//===- store_test.cpp - Artifact store validation tests ------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The store's contract is that a lookup never silently returns a stale or
// damaged artifact: a hit is a validated hit, everything else is a miss or
// an explicit rejection naming what mismatched. This suite attacks every
// frame field — magic, version, kind, root key, config fingerprint,
// payload length, checksum — plus payload truncation and bit flips.
//
//===----------------------------------------------------------------------===//

#include "src/store/ArtifactStore.h"

#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace pose;
using namespace pose::store;
using namespace pose::testhelpers;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

/// Fresh store directory per test, under the gtest temp dir.
std::string freshDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "pose-store-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

struct Fixture {
  Module M;
  EnumerationResult Res;
  HashTriple Root;
  uint64_t Fp = 0;
  EnumeratorConfig Cfg;

  Fixture() : M(compileOrDie(SumSource)) {
    PhaseManager PM;
    Enumerator E(PM, Cfg);
    Function &F = functionNamed(M, "f");
    Res = E.enumerate(F);
    Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
    Fp = configFingerprint(Cfg);
  }
};

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

TEST(ArtifactStore, SaveAndLoadResult) {
  Fixture FX;
  ArtifactStore Store(freshDir("roundtrip"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveResult(FX.Root, FX.Fp, FX.Res, Error)) << Error;

  EnumerationResult Out;
  EXPECT_EQ(Store.loadResult(FX.Root, FX.Fp, Out, Error), LoadStatus::Hit)
      << Error;
  EXPECT_EQ(Out.Nodes.size(), FX.Res.Nodes.size());
  EXPECT_EQ(Out.Stop, FX.Res.Stop);
}

TEST(ArtifactStore, MissingArtifactIsAMissNotAnError) {
  Fixture FX;
  ArtifactStore Store(freshDir("miss"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  EnumerationResult Out;
  EXPECT_EQ(Store.loadResult(FX.Root, FX.Fp, Out, Error), LoadStatus::Miss);
  EnumerationCheckpoint Cp;
  EXPECT_EQ(Store.loadCheckpoint(FX.Root, FX.Fp, Cp, Error),
            LoadStatus::Miss);
}

TEST(ArtifactStore, WrongFingerprintRejectedWithDiagnostic) {
  Fixture FX;
  ArtifactStore Store(freshDir("fingerprint"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveResult(FX.Root, FX.Fp, FX.Res, Error)) << Error;

  // The same artifact looked up under a different configuration: stale,
  // must be rejected with a configuration diagnostic, never reused.
  EnumeratorConfig Other = FX.Cfg;
  Other.MaxLevelSequences += 1;
  EnumerationResult Out;
  EXPECT_EQ(Store.loadResult(FX.Root, configFingerprint(Other), Out, Error),
            LoadStatus::Rejected);
  EXPECT_NE(Error.find("configuration"), std::string::npos) << Error;
}

TEST(ArtifactStore, ExecutionOnlyKnobsShareAFingerprint) {
  // Jobs, deadline, memory budget and the stop token do not shape the
  // DAG; artifacts must be shared across them (that is what makes a
  // jobs=1 checkpoint resumable under jobs=4).
  EnumeratorConfig A;
  EnumeratorConfig B;
  B.Jobs = 8;
  B.DeadlineMs = 123;
  B.MaxMemoryBytes = 1 << 20;
  StopToken T;
  B.Stop = &T;
  EXPECT_EQ(configFingerprint(A), configFingerprint(B));

  EnumeratorConfig C;
  C.MaxTotalNodes -= 1;
  EXPECT_NE(configFingerprint(A), configFingerprint(C));
  EnumeratorConfig D;
  D.VerifyIr = true;
  EXPECT_NE(configFingerprint(A), configFingerprint(D));
  EnumeratorConfig E;
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("c:3", Plan));
  E.Faults = &Plan;
  EXPECT_NE(configFingerprint(A), configFingerprint(E));
}

TEST(ArtifactStore, CrashClassFaultsShareAFingerprint) {
  // Crash faults kill the worker process; they never shape a persisted
  // DAG. Results, checkpoints and quarantine records must be shared
  // between a faulty worker and a clean retry — that is what lets a
  // supervised retry resume the crashed worker's checkpoint, and a clean
  // sweep reuse a previously-faulted function's result.
  EnumeratorConfig A;
  EnumeratorConfig B;
  FaultPlan Crash;
  ASSERT_TRUE(FaultPlan::parse("c:3:segv", Crash));
  B.Faults = &Crash;
  EXPECT_EQ(configFingerprint(A), configFingerprint(B));

  // Verifier faults DO shape the DAG (rejected instances) and stay in
  // the fingerprint; a mixed plan is therefore still distinguishing.
  EnumeratorConfig C;
  FaultPlan Mixed;
  ASSERT_TRUE(FaultPlan::parse("c:3,d:1:kill", Mixed));
  C.Faults = &Mixed;
  EXPECT_NE(configFingerprint(A), configFingerprint(C));
}

TEST(ArtifactStore, QuarantineLifecycle) {
  Fixture FX;
  ArtifactStore Store(freshDir("quarantine"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;

  QuarantineRecord Q;
  Q.Failure = WorkerFailure::Signal;
  Q.Signal = 11;
  Q.Attempts = 3;
  Q.Message = "worker died with signal 11";
  ASSERT_TRUE(Store.saveQuarantine(FX.Root, FX.Fp, Q, Error)) << Error;

  QuarantineRecord Out;
  EXPECT_EQ(Store.loadQuarantine(FX.Root, FX.Fp, Out, Error),
            LoadStatus::Hit)
      << Error;
  EXPECT_EQ(Out.Failure, WorkerFailure::Signal);
  EXPECT_EQ(Out.Signal, 11);
  EXPECT_EQ(Out.Attempts, 3u);
  EXPECT_EQ(Out.Message, Q.Message);

  // A different configuration is a different job: its quarantine state
  // is independent, and a stale record is rejected, never reused.
  EXPECT_EQ(Store.loadQuarantine(FX.Root, FX.Fp + 1, Out, Error),
            LoadStatus::Rejected);

  Store.removeQuarantine(FX.Root);
  EXPECT_EQ(Store.loadQuarantine(FX.Root, FX.Fp, Out, Error),
            LoadStatus::Miss);
  // Removing an absent record is a no-op, not an error.
  Store.removeQuarantine(FX.Root);
}

TEST(ArtifactStore, SavingAResultClearsTheQuarantine) {
  // A completed result proves the job is healthy; a lingering quarantine
  // record would wrongly make later sweeps skip a function whose answer
  // is sitting right next to it.
  Fixture FX;
  ArtifactStore Store(freshDir("quarantine-clear"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;

  QuarantineRecord Q;
  Q.Failure = WorkerFailure::Timeout;
  Q.Attempts = 2;
  ASSERT_TRUE(Store.saveQuarantine(FX.Root, FX.Fp, Q, Error)) << Error;
  ASSERT_TRUE(Store.saveResult(FX.Root, FX.Fp, FX.Res, Error)) << Error;

  QuarantineRecord Out;
  EXPECT_EQ(Store.loadQuarantine(FX.Root, FX.Fp, Out, Error),
            LoadStatus::Miss);
  EnumerationResult Res;
  EXPECT_EQ(Store.loadResult(FX.Root, FX.Fp, Res, Error), LoadStatus::Hit)
      << Error;
}

TEST(ArtifactStore, EveryCorruptedByteRejected) {
  Fixture FX;
  ArtifactStore Store(freshDir("corrupt"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveResult(FX.Root, FX.Fp, FX.Res, Error)) << Error;
  const std::string Path = Store.pathFor(FX.Root, ArtifactKind::Result);
  const std::vector<uint8_t> Good = readFile(Path);
  ASSERT_FALSE(Good.empty());

  // Flip one byte at a time across the whole file (capped stride keeps
  // the test fast on big artifacts): no flip may produce a Hit.
  const size_t Stride = std::max<size_t>(1, Good.size() / 512);
  for (size_t I = 0; I < Good.size(); I += Stride) {
    std::vector<uint8_t> Bad = Good;
    Bad[I] ^= 0x01;
    writeFile(Path, Bad);
    EnumerationResult Out;
    EXPECT_EQ(Store.loadResult(FX.Root, FX.Fp, Out, Error),
              LoadStatus::Rejected)
        << "flipped byte " << I;
  }
  writeFile(Path, Good);
  EnumerationResult Out;
  EXPECT_EQ(Store.loadResult(FX.Root, FX.Fp, Out, Error), LoadStatus::Hit);
}

TEST(ArtifactStore, TruncatedFileRejected) {
  Fixture FX;
  ArtifactStore Store(freshDir("truncate"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveResult(FX.Root, FX.Fp, FX.Res, Error)) << Error;
  const std::string Path = Store.pathFor(FX.Root, ArtifactKind::Result);
  const std::vector<uint8_t> Good = readFile(Path);

  for (size_t Len : {size_t{0}, size_t{7}, size_t{20}, Good.size() / 2,
                     Good.size() - 1}) {
    writeFile(Path, std::vector<uint8_t>(Good.begin(), Good.begin() + Len));
    EnumerationResult Out;
    EXPECT_EQ(Store.loadResult(FX.Root, FX.Fp, Out, Error),
              LoadStatus::Rejected)
        << "truncated to " << Len;
  }
}

TEST(ArtifactStore, FutureFormatVersionRejected) {
  Fixture FX;
  ArtifactStore Store(freshDir("version"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveResult(FX.Root, FX.Fp, FX.Res, Error)) << Error;
  const std::string Path = Store.pathFor(FX.Root, ArtifactKind::Result);
  std::vector<uint8_t> Bytes = readFile(Path);
  // The version field is the little-endian u32 right after the 8-byte
  // magic.
  Bytes[8] = static_cast<uint8_t>(kFormatVersion + 1);
  writeFile(Path, Bytes);
  EnumerationResult Out;
  EXPECT_EQ(Store.loadResult(FX.Root, FX.Fp, Out, Error),
            LoadStatus::Rejected);
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(ArtifactStore, ArtifactForDifferentRootRejected) {
  Fixture FX;
  ArtifactStore Store(freshDir("wrongroot"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  ASSERT_TRUE(Store.saveResult(FX.Root, FX.Fp, FX.Res, Error)) << Error;

  // Simulate a renamed/misplaced file: copy the artifact to the path of a
  // different root. The embedded key must catch it.
  HashTriple Other = FX.Root;
  Other.Crc ^= 0xFFFFFFFF;
  writeFile(Store.pathFor(Other, ArtifactKind::Result),
            readFile(Store.pathFor(FX.Root, ArtifactKind::Result)));
  EnumerationResult Out;
  EXPECT_EQ(Store.loadResult(Other, FX.Fp, Out, Error),
            LoadStatus::Rejected);
  EXPECT_NE(Error.find("different root"), std::string::npos) << Error;
}

TEST(ArtifactStore, KindConfusionRejected) {
  // A checkpoint file copied over a result path (or vice versa) must not
  // decode as the wrong type.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.MaxMemoryBytes = 20'000;
  Enumerator E(PM, Cfg);
  EnumerationCheckpoint Cp;
  EnumerationResult Res = E.enumerate(F, &Cp);
  ASSERT_TRUE(Cp.Valid);

  ArtifactStore Store(freshDir("kind"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  HashTriple Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
  uint64_t Fp = configFingerprint(Cfg);
  ASSERT_TRUE(Store.saveCheckpoint(Root, Fp, Cp, Error)) << Error;
  writeFile(Store.pathFor(Root, ArtifactKind::Result),
            readFile(Store.pathFor(Root, ArtifactKind::Checkpoint)));
  EnumerationResult Out;
  EXPECT_EQ(Store.loadResult(Root, Fp, Out, Error), LoadStatus::Rejected);
  EXPECT_NE(Error.find("kind"), std::string::npos) << Error;
}

TEST(ArtifactStore, SavingAResultSupersedesTheCheckpoint) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.MaxMemoryBytes = 20'000;
  Enumerator E(PM, Cfg);
  EnumerationCheckpoint Cp;
  EnumerationResult Partial = E.enumerate(F, &Cp);
  ASSERT_TRUE(Cp.Valid);

  ArtifactStore Store(freshDir("supersede"));
  std::string Error;
  ASSERT_TRUE(Store.prepare(Error)) << Error;
  HashTriple Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
  uint64_t Fp = configFingerprint(Cfg);
  ASSERT_TRUE(Store.saveCheckpoint(Root, Fp, Cp, Error)) << Error;
  EnumerationCheckpoint Loaded;
  ASSERT_EQ(Store.loadCheckpoint(Root, Fp, Loaded, Error), LoadStatus::Hit);

  ASSERT_TRUE(Store.saveResult(Root, Fp, Partial, Error)) << Error;
  EXPECT_EQ(Store.loadCheckpoint(Root, Fp, Loaded, Error),
            LoadStatus::Miss)
      << "checkpoint must be removed once a result exists";
}

TEST(ArtifactStore, UnwritableDirectoryReportsAnError) {
  ArtifactStore Store("/proc/definitely/not/writable");
  std::string Error;
  EXPECT_FALSE(Store.prepare(Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
