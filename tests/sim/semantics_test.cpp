//===- semantics_test.cpp - Corner-case machine semantics ------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Direct-IR tests of the simulator's machine semantics at the edges the MC
// front end cannot reach (unsigned condition codes, extreme operands,
// trapping divisions with INT_MIN).
//
//===----------------------------------------------------------------------===//

#include "src/sim/Interpreter.h"

#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

/// Wraps a hand-built single function into a runnable module.
Module moduleOf(Function F, int NumParams) {
  Module M;
  Global G;
  G.Name = "f";
  G.Kind = GlobalKind::Func;
  G.FuncIndex = 0;
  G.ReturnsValue = true;
  G.NumParams = NumParams;
  M.Globals.push_back(G);
  F.Name = "f";
  F.ReturnsValue = true;
  F.NumParams = NumParams;
  while (static_cast<int>(F.Slots.size()) < NumParams) {
    StackSlot S;
    S.Name = "p" + std::to_string(F.Slots.size());
    S.IsParam = true;
    F.addSlot(S);
  }
  M.Functions.push_back(std::move(F));
  return M;
}

/// f(a, b) = 1 if (a <cond> b) else 0, via the given condition code.
int32_t evalCond(Cond C, int32_t A, int32_t B) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  (void)B1;
  RegNum RA = F.makePseudo(), RB = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::load(Operand::reg(RA),
                                         Operand::slot(0), 0));
  F.Blocks[B0].Insts.push_back(rtl::load(Operand::reg(RB),
                                         Operand::slot(1), 0));
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(RA),
                                        Operand::reg(RB)));
  F.Blocks[B0].Insts.push_back(rtl::branch(C, F.Blocks[B2].Label));
  F.Blocks[1].Insts.push_back(rtl::ret(Operand::imm(0)));
  F.Blocks[B2].Insts.push_back(rtl::ret(Operand::imm(1)));
  // Parameters need slots before moduleOf fills the rest.
  StackSlot S0;
  S0.Name = "a";
  S0.IsParam = true;
  StackSlot S1;
  S1.Name = "b";
  S1.IsParam = true;
  F.Slots.insert(F.Slots.begin(), {S0, S1});
  Module M = moduleOf(std::move(F), 2);
  Interpreter Sim(M);
  RunResult R = Sim.run("f", {A, B});
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.ReturnValue;
}

TEST(Semantics, UnsignedConditions) {
  // -1 is the largest unsigned value.
  EXPECT_EQ(evalCond(Cond::ULt, -1, 1), 0);
  EXPECT_EQ(evalCond(Cond::ULt, 1, -1), 1);
  EXPECT_EQ(evalCond(Cond::UGt, -1, 1), 1);
  EXPECT_EQ(evalCond(Cond::UGe, INT32_MIN, INT32_MAX), 1);
  EXPECT_EQ(evalCond(Cond::ULe, 0, 0), 1);
  // Signed counterparts disagree, proving the distinction is live.
  EXPECT_EQ(evalCond(Cond::Lt, -1, 1), 1);
  EXPECT_EQ(evalCond(Cond::Gt, -1, 1), 0);
}

TEST(Semantics, IntMinDivideTraps) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(INT32_MIN)));
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(-1)));
  I.push_back(rtl::binary(Op::Div, Operand::reg(C), Operand::reg(A),
                          Operand::reg(B)));
  I.push_back(rtl::ret(Operand::reg(C)));
  Module M = moduleOf(std::move(F), 0);
  Interpreter Sim(M);
  RunResult R = Sim.run("f", {});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division"), std::string::npos);
}

TEST(Semantics, NegateIntMinWraps) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(INT32_MIN)));
  I.push_back(rtl::unary(Op::Neg, Operand::reg(B), Operand::reg(A)));
  I.push_back(rtl::ret(Operand::reg(B)));
  Module M = moduleOf(std::move(F), 0);
  Interpreter Sim(M);
  RunResult R = Sim.run("f", {});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue, INT32_MIN); // -INT_MIN wraps to itself.
}

TEST(SameBehavior, TrapPairsCompareByTrapClass) {
  RunResult DivA;
  DivA.Ok = false;
  DivA.Error = "division by zero in f";
  RunResult DivB;
  DivB.Ok = false;
  DivB.Error = "division by zero in g"; // Same class, other function.
  RunResult Oob;
  Oob.Ok = false;
  Oob.Error = "load out of bounds in f";
  // Two traps of one class are the same behavior wherever they fired;
  // two traps of different classes never are (the regression this guards:
  // !Ok pairs used to compare equal on partial output alone).
  EXPECT_TRUE(DivA.sameBehavior(DivB));
  EXPECT_TRUE(DivB.sameBehavior(DivA));
  EXPECT_FALSE(DivA.sameBehavior(Oob));
  EXPECT_FALSE(Oob.sameBehavior(DivA));
}

TEST(SameBehavior, TrapNeverEqualsOk) {
  RunResult Ok;
  Ok.Ok = true;
  Ok.ReturnValue = 0;
  RunResult Trap;
  Trap.Ok = false;
  Trap.Error = "division by zero in f";
  Trap.ReturnValue = 0; // Identical payloads must not mask the trap.
  EXPECT_FALSE(Ok.sameBehavior(Trap));
  EXPECT_FALSE(Trap.sameBehavior(Ok));
  EXPECT_TRUE(Ok.sameBehavior(Ok));
  EXPECT_TRUE(Trap.sameBehavior(Trap));
}

TEST(SameBehavior, TrapKindStripsOnlyTheFunctionContext) {
  RunResult R;
  R.Ok = false;
  R.Error = "step limit exceeded in long_name";
  EXPECT_EQ(R.trapKind(), "step limit exceeded");
  R.Error = "no such function: f"; // No " in <func>" suffix to strip.
  EXPECT_EQ(R.trapKind(), "no such function: f");
  R.Ok = true;
  EXPECT_EQ(R.trapKind(), "");
}

TEST(Semantics, ShiftAmountsMasked) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), C = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(1)));
  I.push_back(rtl::mov(Operand::reg(B), Operand::imm(33)));
  I.push_back(rtl::binary(Op::Shl, Operand::reg(C), Operand::reg(A),
                          Operand::reg(B))); // 33 & 31 == 1.
  I.push_back(rtl::ret(Operand::reg(C)));
  Module M = moduleOf(std::move(F), 0);
  Interpreter Sim(M);
  RunResult R = Sim.run("f", {});
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue, 2);
}

} // namespace
