//===- trap_edge_test.cpp - Interpreter trap edges -----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The address and arithmetic edges the equivalence vector generator
// deliberately reaches (src/sem/TestVectors.h boundary pool): every one
// must end in a clean classified trap or a defined wrapped result — never
// undefined behavior — because behavior digests are built from exactly
// these outcomes. Runs under the ASan/UBSan presets like the rest of the
// suite.
//
//===----------------------------------------------------------------------===//

#include "src/sim/Interpreter.h"

#include <climits>
#include <gtest/gtest.h>

using namespace pose;

namespace {

constexpr size_t kArenaWords = 1u << 12; // 4096-word arena for the tests.

/// Wraps a hand-built single function into a runnable module.
Module moduleOf(Function F, int NumParams) {
  Module M;
  Global G;
  G.Name = "f";
  G.Kind = GlobalKind::Func;
  G.FuncIndex = 0;
  G.ReturnsValue = true;
  G.NumParams = NumParams;
  M.Globals.push_back(G);
  F.Name = "f";
  F.ReturnsValue = true;
  F.NumParams = NumParams;
  while (static_cast<int>(F.Slots.size()) < NumParams) {
    StackSlot S;
    S.Name = "p" + std::to_string(F.Slots.size());
    S.IsParam = true;
    F.addSlot(S);
  }
  M.Functions.push_back(std::move(F));
  return M;
}

/// f() = load from absolute word address \p Addr.
RunResult runLoadAt(int32_t Addr) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), V = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(Addr)));
  I.push_back(rtl::load(Operand::reg(V), Operand::reg(A), 0));
  I.push_back(rtl::ret(Operand::reg(V)));
  Module M = moduleOf(std::move(F), 0);
  Interpreter Sim(M, kArenaWords);
  return Sim.run("f", {});
}

/// f() = store 7 to absolute word address \p Addr, then return 0.
RunResult runStoreAt(int32_t Addr) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(Addr)));
  I.push_back(rtl::store(Operand::reg(A), 0, Operand::imm(7)));
  I.push_back(rtl::ret(Operand::imm(0)));
  Module M = moduleOf(std::move(F), 0);
  Interpreter Sim(M, kArenaWords);
  return Sim.run("f", {});
}

/// f() = binary(OpCode, A, B).
RunResult runBinary(Op OpCode, int32_t A, int32_t B) {
  Function F;
  F.addBlock();
  RegNum RA = F.makePseudo(), RB = F.makePseudo(), RC = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(RA), Operand::imm(A)));
  I.push_back(rtl::mov(Operand::reg(RB), Operand::imm(B)));
  I.push_back(rtl::binary(OpCode, Operand::reg(RC), Operand::reg(RA),
                          Operand::reg(RB)));
  I.push_back(rtl::ret(Operand::reg(RC)));
  Module M = moduleOf(std::move(F), 0);
  Interpreter Sim(M, kArenaWords);
  return Sim.run("f", {});
}

TEST(TrapEdges, LoadsBelowTheGlobalBaseTrap) {
  // Addresses 0..15 are deliberately unmapped so stray null-ish pointers
  // trap instead of reading globals.
  for (int32_t Addr : {0, 1, 15, -1, INT32_MIN}) {
    const RunResult R = runLoadAt(Addr);
    EXPECT_FALSE(R.Ok) << "address " << Addr;
    EXPECT_EQ(R.trapKind(), "load out of bounds") << "address " << Addr;
  }
}

TEST(TrapEdges, LoadAtTheGlobalBaseBoundaryIsClean) {
  // 16 is the first mapped word; the zeroed arena reads back 0.
  const RunResult R = runLoadAt(16);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue, 0);
}

TEST(TrapEdges, LoadsAtAndPastTheArenaTopTrap) {
  for (int32_t Addr : {static_cast<int32_t>(kArenaWords),
                       static_cast<int32_t>(kArenaWords) + 1, INT32_MAX}) {
    const RunResult R = runLoadAt(Addr);
    EXPECT_FALSE(R.Ok) << "address " << Addr;
    EXPECT_EQ(R.trapKind(), "load out of bounds") << "address " << Addr;
  }
}

TEST(TrapEdges, LoadOfTheLastArenaWordIsClean) {
  const RunResult R = runLoadAt(static_cast<int32_t>(kArenaWords) - 1);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(TrapEdges, StoresShareTheSameBoundsWithTheirOwnTrapClass) {
  for (int32_t Addr :
       {0, 15, -1, static_cast<int32_t>(kArenaWords), INT32_MAX}) {
    const RunResult R = runStoreAt(Addr);
    EXPECT_FALSE(R.Ok) << "address " << Addr;
    EXPECT_EQ(R.trapKind(), "store out of bounds") << "address " << Addr;
  }
  EXPECT_TRUE(runStoreAt(16).Ok);
}

TEST(TrapEdges, IntMinDivAndRemTrapLikeDivisionByZero) {
  for (Op O : {Op::Div, Op::Rem}) {
    const RunResult ByZero = runBinary(O, 5, 0);
    EXPECT_FALSE(ByZero.Ok);
    EXPECT_EQ(ByZero.trapKind(), "division by zero");
    // INT32_MIN / -1 overflows in hardware; the machine traps it under
    // the same class rather than wrapping.
    const RunResult Overflow = runBinary(O, INT32_MIN, -1);
    EXPECT_FALSE(Overflow.Ok);
    EXPECT_EQ(Overflow.trapKind(), "division by zero");
  }
  // The neighboring cases stay defined.
  EXPECT_EQ(runBinary(Op::Div, INT32_MIN, 1).ReturnValue, INT32_MIN);
  EXPECT_EQ(runBinary(Op::Div, INT32_MAX, -1).ReturnValue, -INT32_MAX);
}

TEST(TrapEdges, ShiftAmountsOf32AndBeyondAreMaskedNotUB) {
  // The machine masks shift amounts to 5 bits (Section: word-addressed
  // 32-bit machine), so oversized and negative amounts are defined.
  EXPECT_EQ(runBinary(Op::Shl, 1, 32).ReturnValue, 1);  // 32 & 31 == 0.
  EXPECT_EQ(runBinary(Op::Shl, 1, 33).ReturnValue, 2);  // 33 & 31 == 1.
  EXPECT_EQ(runBinary(Op::Shl, 1, -1).ReturnValue, INT32_MIN); // -1 & 31 == 31.
  EXPECT_EQ(runBinary(Op::Shr, INT32_MIN, 31).ReturnValue, -1);
  EXPECT_EQ(runBinary(Op::Shr, INT32_MIN, 32).ReturnValue, INT32_MIN);
  EXPECT_EQ(runBinary(Op::Ushr, INT32_MIN, 31).ReturnValue, 1);
  EXPECT_EQ(runBinary(Op::Ushr, -1, 33).ReturnValue, INT32_MAX);
  // Shifting INT32_MIN left wraps to zero rather than tripping UBSan.
  EXPECT_EQ(runBinary(Op::Shl, INT32_MIN, 1).ReturnValue, 0);
}

} // namespace
