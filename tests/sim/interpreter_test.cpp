//===- interpreter_test.cpp - RTL interpreter tests ---------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/sim/Interpreter.h"

#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

int32_t runInt(const std::string &Src, const std::string &Fn,
               std::vector<int32_t> Args) {
  Module M = compileOrDie(Src);
  Interpreter I(M);
  RunResult R = I.run(Fn, Args);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.ReturnValue;
}

TEST(Interpreter, Arithmetic) {
  EXPECT_EQ(runInt("int f(int a,int b){return a+b;}", "f", {3, 4}), 7);
  EXPECT_EQ(runInt("int f(int a,int b){return a-b;}", "f", {3, 4}), -1);
  EXPECT_EQ(runInt("int f(int a,int b){return a*b;}", "f", {-3, 4}), -12);
  EXPECT_EQ(runInt("int f(int a,int b){return a/b;}", "f", {7, 2}), 3);
  EXPECT_EQ(runInt("int f(int a,int b){return a%b;}", "f", {7, 2}), 1);
  EXPECT_EQ(runInt("int f(int a,int b){return a&b;}", "f", {6, 3}), 2);
  EXPECT_EQ(runInt("int f(int a,int b){return a|b;}", "f", {6, 3}), 7);
  EXPECT_EQ(runInt("int f(int a,int b){return a^b;}", "f", {6, 3}), 5);
  EXPECT_EQ(runInt("int f(int a){return -a;}", "f", {5}), -5);
  EXPECT_EQ(runInt("int f(int a){return ~a;}", "f", {0}), -1);
}

TEST(Interpreter, Shifts) {
  EXPECT_EQ(runInt("int f(int a,int b){return a<<b;}", "f", {1, 4}), 16);
  EXPECT_EQ(runInt("int f(int a,int b){return a>>b;}", "f", {-8, 1}), -4);
  EXPECT_EQ(runInt("int f(int a,int b){return a>>>b;}", "f", {-8, 1}),
            0x7FFFFFFC);
}

TEST(Interpreter, Comparisons) {
  EXPECT_EQ(runInt("int f(int a,int b){return a<b;}", "f", {1, 2}), 1);
  EXPECT_EQ(runInt("int f(int a,int b){return a<b;}", "f", {2, 1}), 0);
  EXPECT_EQ(runInt("int f(int a,int b){return a==b;}", "f", {2, 2}), 1);
  EXPECT_EQ(runInt("int f(int a,int b){return a!=b;}", "f", {2, 2}), 0);
  EXPECT_EQ(runInt("int f(int a){return !a;}", "f", {0}), 1);
  EXPECT_EQ(runInt("int f(int a){return !a;}", "f", {5}), 0);
}

TEST(Interpreter, ShortCircuit) {
  // Division by zero on the right must not execute when guarded.
  EXPECT_EQ(
      runInt("int f(int a,int b){ return b != 0 && a / b > 1; }", "f",
             {10, 0}),
      0);
  EXPECT_EQ(
      runInt("int f(int a,int b){ return b == 0 || a / b > 1; }", "f",
             {10, 0}),
      1);
}

TEST(Interpreter, LoopsAndLocals) {
  EXPECT_EQ(runInt("int f(int n){int s=0;int i;for(i=1;i<=n;i=i+1)s=s+i;"
                   "return s;}",
                   "f", {100}),
            5050);
  EXPECT_EQ(runInt("int f(int n){int s=0;while(n>0){s=s+n;n=n-1;}return s;}",
                   "f", {4}),
            10);
  EXPECT_EQ(runInt("int f(){int i=0;do{i=i+1;}while(i<5);return i;}", "f",
                   {}),
            5);
}

TEST(Interpreter, BreakContinue) {
  EXPECT_EQ(runInt("int f(){int s=0;int i;for(i=0;i<10;i=i+1){"
                   "if(i==5)break; if(i%2==0)continue; s=s+i;}return s;}",
                   "f", {}),
            1 + 3);
}

TEST(Interpreter, GlobalsAndArrays) {
  const char *Src = "int a[5] = {10,20,30,40,50};\n"
                    "int g = 7;\n"
                    "int f(int i) { g = g + 1; return a[i] + g; }";
  EXPECT_EQ(runInt(Src, "f", {2}), 38);
}

TEST(Interpreter, GlobalsResetBetweenRuns) {
  Module M = compileOrDie("int g = 1; int f() { g = g + 1; return g; }");
  Interpreter I(M);
  EXPECT_EQ(I.run("f", {}).ReturnValue, 2);
  EXPECT_EQ(I.run("f", {}).ReturnValue, 2); // Not 3: memory re-initialized.
}

TEST(Interpreter, LocalArrays) {
  EXPECT_EQ(runInt("int f(){int a[4];int i;for(i=0;i<4;i=i+1)a[i]=i*i;"
                   "return a[3];}",
                   "f", {}),
            9);
}

TEST(Interpreter, CallsAndRecursion) {
  const char *Src = "int fib(int n){ if(n<2) return n;"
                    " return fib(n-1)+fib(n-2); }";
  EXPECT_EQ(runInt(Src, "fib", {10}), 55);
}

TEST(Interpreter, OutBuiltinCollectsOutput) {
  Module M = compileOrDie("void f(){ out(1); out(2); out(3); }");
  Interpreter I(M);
  RunResult R = I.run("f", {});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{1, 2, 3}));
}

TEST(Interpreter, DynamicCountsPositiveAndDeterministic) {
  Module M = compileOrDie("int f(int n){int s=0;int i;"
                          "for(i=0;i<n;i=i+1)s=s+i;return s;}");
  Interpreter I(M);
  uint64_t C1 = I.run("f", {10}).DynamicInsts;
  uint64_t C2 = I.run("f", {10}).DynamicInsts;
  uint64_t C3 = I.run("f", {20}).DynamicInsts;
  EXPECT_GT(C1, 0u);
  EXPECT_EQ(C1, C2);
  EXPECT_GT(C3, C1); // More iterations, more instructions.
}

TEST(Interpreter, DivisionByZeroTraps) {
  Module M = compileOrDie("int f(int a){ return 10 / a; }");
  Interpreter I(M);
  RunResult R = I.run("f", {0});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division"), std::string::npos);
}

TEST(Interpreter, StepLimitTraps) {
  Module M = compileOrDie("int f(){ while(1) {} return 0; }");
  Interpreter I(M);
  RunResult R = I.run("f", {}, /*StepLimit=*/10'000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(Interpreter, RecursionDepthTraps) {
  Module M = compileOrDie("int f(int n){ return f(n+1); }");
  Interpreter I(M);
  RunResult R = I.run("f", {0});
  EXPECT_FALSE(R.Ok);
}

TEST(Interpreter, OutOfBoundsTraps) {
  Module M = compileOrDie("int a[2]; int f(int i){ return a[i]; }");
  Interpreter I(M);
  RunResult R = I.run("f", {-1000000});
  EXPECT_FALSE(R.Ok);
}

TEST(Interpreter, OverrideFunction) {
  Module M = compileOrDie("int f() { return 1; }");
  // Hand-build a replacement body returning 42.
  Function Alt;
  Alt.Name = "f";
  Alt.ReturnsValue = true;
  Alt.addBlock();
  Alt.Blocks[0].Insts.push_back(rtl::ret(Operand::imm(42)));
  Interpreter I(M);
  EXPECT_EQ(I.run("f", {}).ReturnValue, 1);
  I.overrideFunction("f", &Alt);
  EXPECT_EQ(I.run("f", {}).ReturnValue, 42);
  I.overrideFunction("f", nullptr);
  EXPECT_EQ(I.run("f", {}).ReturnValue, 1);
}

TEST(Interpreter, SameBehaviorComparison) {
  RunResult A, B;
  A.Ok = B.Ok = true;
  A.ReturnValue = B.ReturnValue = 3;
  A.Output = B.Output = {1, 2};
  A.DynamicInsts = 10;
  B.DynamicInsts = 99; // Different cost, same behaviour.
  EXPECT_TRUE(A.sameBehavior(B));
  B.Output.push_back(3);
  EXPECT_FALSE(A.sameBehavior(B));
}

} // namespace
