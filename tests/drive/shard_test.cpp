//===- shard_test.cpp - Sharded sweeps, merge, and crash recovery --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The distributed-sweep contract: shard assignment is a pure function of
// the canonical root, N supervisors with disjoint shard indices cover
// every job exactly once, and merging their stores yields a store
// byte-identical to a single unsharded sweep — even when every shard's
// workers crash mid-commit on their first attempt. Plus the operator
// surface: torn-rename recovery through the real posec binary, and the
// documented exit codes for --fsck (9), --fsck --repair (0), and a
// merge conflict (10).
//
//===----------------------------------------------------------------------===//

#include "src/drive/Supervisor.h"

#include "src/core/Canonical.h"
#include "src/drive/ExitCodes.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "src/store/ArtifactStore.h"
#include "src/store/StoreAdmin.h"
#include "src/support/FaultFs.h"
#include "src/support/Subprocess.h"
#include "tests/common/Helpers.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <map>

namespace fs = std::filesystem;

using namespace pose;
using namespace pose::drive;
using namespace pose::testhelpers;

namespace {

// Four distinct-body functions: four distinct roots to spread over shards.
const char *SweepSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}"
    "int g(int a,int b){return a+b+7;}"
    "int h(int x){int y=x*3;if(y>10){y=y-1;}return y;}"
    "int k(int a){int t=0;int j=a;while(j>0){t=t+j;j=j-2;}return t;}";

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "pose-shard-" + Name;
  fs::remove_all(Dir);
  return Dir;
}

std::string sourceFile(const char *Name) {
  std::string Path = ::testing::TempDir() + "pose-shard-" + Name + ".mc";
  std::ofstream Out(Path, std::ios::trunc);
  Out << SweepSource;
  return Path;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

SupervisorOptions baseOptions(const std::string &Input,
                              const std::string &StoreDir) {
  SupervisorOptions O;
  O.PosecPath = POSE_POSEC_PATH;
  O.InputPath = Input;
  O.StoreDir = StoreDir;
  O.Budget = 50'000;
  O.Retry.BaseDelayMs = 1;
  O.Retry.MaxDelayMs = 2;
  return O;
}

SubprocessResult runPosec(std::vector<std::string> Args) {
  SubprocessSpec Spec;
  Spec.Argv.push_back(POSE_POSEC_PATH);
  for (std::string &A : Args)
    Spec.Argv.push_back(std::move(A));
  Spec.TimeoutMs = 60'000;
  return runSubprocess(Spec);
}

/// Maps file name -> bytes for every `*.pose` artifact in \p Dir.
std::map<std::string, std::vector<uint8_t>>
storeContents(const std::string &Dir) {
  std::map<std::string, std::vector<uint8_t>> Out;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    const std::string Name = E.path().filename().string();
    if (E.is_regular_file() && Name.size() > 5 &&
        Name.compare(Name.size() - 5, 5, ".pose") == 0)
      Out[Name] = readFile(E.path().string());
  }
  return Out;
}

/// The merged store must be byte-identical to the reference: same file
/// names, same bytes, nothing extra on either side.
void expectSameStores(const std::string &Ref, const std::string &Got,
                      const char *What) {
  const auto A = storeContents(Ref), B = storeContents(Got);
  ASSERT_EQ(A.size(), B.size()) << What;
  for (const auto &KV : A) {
    const auto It = B.find(KV.first);
    ASSERT_TRUE(It != B.end()) << What << " missing " << KV.first;
    EXPECT_EQ(KV.second, It->second) << What << " differs: " << KV.first;
  }
}

std::vector<std::string> tmpFilesIn(const std::string &Dir) {
  std::vector<std::string> Out;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    const std::string Name = E.path().filename().string();
    if (Name.size() > 9 &&
        Name.compare(Name.size() - 9, 9, ".pose.tmp") == 0)
      Out.push_back(Name);
  }
  return Out;
}

TEST(ShardOfRoot, IsDeterministicAndInRange) {
  Module M = compileOrDie(SweepSource);
  for (Function &F : M.Functions) {
    const HashTriple Root = canonicalize(F, false, true).Hash;
    for (uint64_t N = 1; N <= 8; ++N) {
      const uint64_t S = shardOfRoot(Root, N);
      EXPECT_LT(S, N) << F.Name;
      EXPECT_EQ(S, shardOfRoot(Root, N)) << F.Name;
    }
    EXPECT_EQ(shardOfRoot(Root, 1), 0u) << F.Name;
  }
}

TEST(ShardOfRoot, DependsOnEveryTripleField) {
  // Flipping any field of the triple moves the 64-bit hash (and, with
  // overwhelming likelihood for these deltas, the shard at large N).
  const HashTriple Base{10, 1234, 0xDEADBEEF};
  HashTriple DInst = Base, DSum = Base, DCrc = Base;
  DInst.InstCount += 1;
  DSum.ByteSum += 1;
  DCrc.Crc ^= 1;
  constexpr uint64_t N = 1u << 16; // Wide modulus: collisions unlikely.
  const uint64_t S = shardOfRoot(Base, N);
  EXPECT_NE(S, shardOfRoot(DInst, N));
  EXPECT_NE(S, shardOfRoot(DSum, N));
  EXPECT_NE(S, shardOfRoot(DCrc, N));
}

// The heart of the tentpole: for N shards, run N crash-injected sweeps
// (every owned worker's first attempt dies between tmp-write and rename),
// merge the shard stores, and require the result byte-identical to one
// clean unsharded sweep. A re-sweep of the merged store must then be all
// cache hits.
void shardedSweepRoundTrip(uint64_t ShardCount) {
  const std::string Tag = "n" + std::to_string(ShardCount);
  const std::string Input = sourceFile(("roundtrip-" + Tag).c_str());
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;

  // Reference: one clean, unsharded sweep.
  const std::string RefDir = freshDir("ref-" + Tag);
  {
    SweepReport R = superviseModule(PM, M, baseOptions(Input, RefDir));
    ASSERT_EQ(R.Error, "");
    ASSERT_EQ(R.exitCode(), ExitCode::Ok);
  }

  // N sharded sweeps, each with crash-before-rename injected into every
  // first attempt. Every job must be owned by exactly one shard.
  std::vector<std::string> ShardDirs;
  std::map<std::string, unsigned> Owners;
  for (uint64_t K = 1; K <= ShardCount; ++K) {
    SupervisorOptions O = baseOptions(
        Input, freshDir("shard-" + Tag + "-" + std::to_string(K)));
    O.ShardIndex = K;
    O.ShardCount = ShardCount;
    O.FaultIoSpec = "crash-before-rename:1";
    O.FaultAttempts = 1; // Attempt 1 tears the rename; attempt 2 is clean.
    O.Retry.MaxRetries = 2;
    ShardDirs.push_back(O.StoreDir);

    SweepReport R = superviseModule(PM, M, O);
    ASSERT_EQ(R.Error, "");
    ASSERT_EQ(R.Jobs.size(), M.Functions.size());
    for (const JobOutcome &J : R.Jobs) {
      if (J.Status == JobStatus::OtherShard) {
        EXPECT_NE(J.Detail.find("assigned to shard"), std::string::npos)
            << J.Detail;
        EXPECT_EQ(J.Attempts, 0u) << J.Func;
        continue;
      }
      EXPECT_EQ(J.Status, JobStatus::Ok) << J.Func << ": " << J.Detail;
      EXPECT_EQ(J.Attempts, 2u) << J.Func; // Crash, then recovery.
      Owners[J.Func] += 1;
    }
    EXPECT_EQ(R.exitCode(), ExitCode::Ok); // OtherShard is exit-neutral.
  }
  ASSERT_EQ(Owners.size(), M.Functions.size());
  for (const auto &KV : Owners)
    EXPECT_EQ(KV.second, 1u) << KV.first << " owned by multiple shards";

  // Merge and compare byte-for-byte against the unsharded reference.
  const std::string Merged = freshDir("merged-" + Tag);
  const store::MergeReport MR = store::mergeStores(Merged, ShardDirs);
  ASSERT_EQ(MR.Status, store::MergeStatus::Ok) << MR.Error;
  EXPECT_EQ(MR.Copied, M.Functions.size());
  expectSameStores(RefDir, Merged, Tag.c_str());

  // A fault-free sweep over the merged store is served from the cache.
  SweepReport Again = superviseModule(PM, M, baseOptions(Input, Merged));
  ASSERT_EQ(Again.Error, "");
  for (const JobOutcome &J : Again.Jobs)
    EXPECT_EQ(J.Status, JobStatus::Cached) << J.Func << ": " << J.Detail;
}

TEST(ShardedSweep, TwoCrashInjectedShardsMergeByteIdentical) {
  shardedSweepRoundTrip(2);
}

TEST(ShardedSweep, ThreeCrashInjectedShardsMergeByteIdentical) {
  shardedSweepRoundTrip(3);
}

TEST(ShardedSweep, SupervisorReclaimsStaleTmpAtStartup) {
  const std::string Input = sourceFile("reclaim");
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;
  const std::string Dir = freshDir("reclaim");
  fs::create_directories(Dir);
  {
    std::ofstream Out(fs::path(Dir) /
                      "11112222-33334444-55556666.result.pose.tmp");
    Out << "torn";
  }
  SweepReport R = superviseModule(PM, M, baseOptions(Input, Dir));
  ASSERT_EQ(R.Error, "");
  ASSERT_EQ(R.ReclaimedTmp.size(), 1u);
  EXPECT_NE(R.ReclaimedTmp[0].find(".pose.tmp"), std::string::npos);
  EXPECT_TRUE(tmpFilesIn(Dir).empty());
}

TEST(TornRenameCli, CrashedEnumerationRecoversByteIdentical) {
  const std::string Input = sourceFile("torn");

  // Reference: a clean single-function enumeration.
  const std::string RefDir = freshDir("torn-ref");
  SubprocessResult Ref = runPosec(
      {Input, "--enumerate=f", "--store=" + RefDir, "--budget=2000"});
  ASSERT_EQ(Ref.Kind, ExitKind::Exited) << Ref.Error;
  ASSERT_EQ(Ref.ExitCode, 0) << Ref.Stderr;

  // The same run with the rename torn: the process dies with the
  // documented injected-crash code, leaving only an orphaned temp file —
  // never a half-written artifact under the final name.
  const std::string Dir = freshDir("torn");
  SubprocessResult Crash = runPosec(
      {Input, "--enumerate=f", "--store=" + Dir, "--budget=2000",
       "--fault-io=crash-before-rename:1"});
  ASSERT_EQ(Crash.Kind, ExitKind::Exited) << Crash.Error;
  EXPECT_EQ(Crash.ExitCode, kIoCrashExit) << Crash.Stderr;
  EXPECT_EQ(tmpFilesIn(Dir).size(), 1u);
  EXPECT_TRUE(storeContents(Dir).empty()); // No committed artifact.

  // fsck sees exactly the orphan and exits with the corrupt-store code.
  SubprocessResult Fsck = runPosec({"--fsck", "--store=" + Dir});
  ASSERT_EQ(Fsck.Kind, ExitKind::Exited) << Fsck.Error;
  EXPECT_EQ(Fsck.ExitCode, ExitCode::StoreCorrupt) << Fsck.Stdout;
  EXPECT_NE(Fsck.Stdout.find("orphan"), std::string::npos) << Fsck.Stdout;

  // A clean rerun converges: same bytes as the reference, temp gone.
  SubprocessResult Redo = runPosec(
      {Input, "--enumerate=f", "--store=" + Dir, "--budget=2000"});
  ASSERT_EQ(Redo.Kind, ExitKind::Exited) << Redo.Error;
  EXPECT_EQ(Redo.ExitCode, 0) << Redo.Stderr;
  EXPECT_TRUE(tmpFilesIn(Dir).empty());
  expectSameStores(RefDir, Dir, "torn-rename recovery");

  SubprocessResult Clean = runPosec({"--fsck", "--store=" + Dir});
  ASSERT_EQ(Clean.Kind, ExitKind::Exited) << Clean.Error;
  EXPECT_EQ(Clean.ExitCode, 0) << Clean.Stdout;
}

TEST(FsckCli, CorruptionExitsNineAndRepairRestoresZero) {
  const std::string Input = sourceFile("fsckcli");
  const std::string Dir = freshDir("fsckcli");
  SubprocessResult Run = runPosec(
      {Input, "--enumerate=f", "--store=" + Dir, "--budget=2000"});
  ASSERT_EQ(Run.Kind, ExitKind::Exited) << Run.Error;
  ASSERT_EQ(Run.ExitCode, 0) << Run.Stderr;

  // Flip one payload byte of the only artifact.
  const auto Contents = storeContents(Dir);
  ASSERT_EQ(Contents.size(), 1u);
  const std::string Victim =
      (fs::path(Dir) / Contents.begin()->first).string();
  std::vector<uint8_t> Bad = Contents.begin()->second;
  Bad[Bad.size() - 1] ^= 0x01;
  {
    std::ofstream Out(Victim, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Bad.data()),
              static_cast<std::streamsize>(Bad.size()));
  }

  SubprocessResult Fsck = runPosec({"--fsck", "--store=" + Dir});
  ASSERT_EQ(Fsck.Kind, ExitKind::Exited) << Fsck.Error;
  EXPECT_EQ(Fsck.ExitCode, ExitCode::StoreCorrupt) << Fsck.Stdout;
  EXPECT_NE(Fsck.Stdout.find("corrupt"), std::string::npos) << Fsck.Stdout;

  SubprocessResult Repair =
      runPosec({"--fsck", "--repair", "--store=" + Dir});
  ASSERT_EQ(Repair.Kind, ExitKind::Exited) << Repair.Error;
  EXPECT_EQ(Repair.ExitCode, 0) << Repair.Stdout << Repair.Stderr;
  EXPECT_NE(Repair.Stdout.find("repaired"), std::string::npos)
      << Repair.Stdout;
  EXPECT_TRUE(
      fs::exists(fs::path(Dir) / store::kLostAndFoundDir /
                 Contents.begin()->first));

  SubprocessResult Clean = runPosec({"--fsck", "--store=" + Dir});
  ASSERT_EQ(Clean.Kind, ExitKind::Exited) << Clean.Error;
  EXPECT_EQ(Clean.ExitCode, 0) << Clean.Stdout;

  // The repaired store re-sweeps cleanly (the lost artifact regenerates).
  SubprocessResult Redo = runPosec(
      {Input, "--enumerate=f", "--store=" + Dir, "--budget=2000"});
  ASSERT_EQ(Redo.Kind, ExitKind::Exited) << Redo.Error;
  EXPECT_EQ(Redo.ExitCode, 0) << Redo.Stderr;
}

TEST(MergeCli, ConflictExitsTenAndNamesTheKey) {
  const std::string Input = sourceFile("mergecli");
  const std::string DirA = freshDir("mergecli-a");
  const std::string DirB = freshDir("mergecli-b");
  // Same function, different budgets: same store key (the file name is
  // the root triple), different bytes (the fingerprint differs).
  for (const auto &P : {std::make_pair(DirA, "--budget=2000"),
                        std::make_pair(DirB, "--budget=3000")}) {
    SubprocessResult R = runPosec(
        {Input, "--enumerate=f", "--store=" + P.first, P.second});
    ASSERT_EQ(R.Kind, ExitKind::Exited) << R.Error;
    ASSERT_EQ(R.ExitCode, 0) << R.Stderr;
  }
  const auto A = storeContents(DirA);
  ASSERT_EQ(A.size(), 1u);

  const std::string Dst = freshDir("mergecli-dst");
  SubprocessResult Merge =
      runPosec({"--merge-store=" + Dst, DirA, DirB});
  ASSERT_EQ(Merge.Kind, ExitKind::Exited) << Merge.Error;
  EXPECT_EQ(Merge.ExitCode, ExitCode::MergeConflict) << Merge.Stderr;
  EXPECT_NE(Merge.Stderr.find("merge conflict"), std::string::npos)
      << Merge.Stderr;
  EXPECT_NE(Merge.Stderr.find(A.begin()->first), std::string::npos)
      << Merge.Stderr;

  // Identical stores merge fine and dedupe.
  const std::string Dst2 = freshDir("mergecli-dst2");
  SubprocessResult Ok = runPosec({"--merge-store=" + Dst2, DirA, DirA});
  ASSERT_EQ(Ok.Kind, ExitKind::Exited) << Ok.Error;
  EXPECT_EQ(Ok.ExitCode, 0) << Ok.Stderr;
  EXPECT_NE(Ok.Stdout.find("1 identical (deduped)"), std::string::npos)
      << Ok.Stdout;
}

} // namespace
