//===- sweep_determinism_test.cpp - Concurrent sweep determinism ---------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The concurrent supervisor's contract: --sweep-jobs is execution-only.
// For any job count, a sweep must produce the same report (statuses,
// attempts, stop reasons, node counts, quarantine decisions, exit code),
// byte-identical stored artifacts, and byte-identical quarantine records
// — including under injected worker crashes, where the retry ladder and
// quarantine machinery run concurrently with healthy jobs.
//
//===----------------------------------------------------------------------===//

#include "src/drive/Supervisor.h"

#include "src/core/Canonical.h"
#include "src/core/Enumerator.h"
#include "src/drive/ExitCodes.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseGuard.h"
#include "src/opt/PhaseManager.h"
#include "src/store/ArtifactStore.h"
#include "tests/common/Helpers.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace pose;
using namespace pose::drive;
using namespace pose::testhelpers;

namespace {

// Four distinct-body functions (four distinct roots), plus the fault
// target "f" first so crash scenarios interleave with healthy workers.
const char *SweepSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}"
    "int g(int a,int b){return a+b+7;}"
    "int h(int x){int y=x*3;if(y>10){y=y-1;}return y;}"
    "int k(int a){int t=0;int j=a;while(j>0){t=t+j;j=j-2;}return t;}";

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "pose-sweepdet-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

std::string sourceFile(const char *Name, const char *Source) {
  std::string Path =
      ::testing::TempDir() + "pose-sweepdet-" + Name + ".mc";
  std::ofstream Out(Path, std::ios::trunc);
  Out << Source;
  return Path;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

SupervisorOptions baseOptions(const std::string &Input,
                              const std::string &StoreDir) {
  SupervisorOptions O;
  O.PosecPath = POSE_POSEC_PATH;
  O.InputPath = Input;
  O.StoreDir = StoreDir;
  O.Budget = 50'000;
  O.Retry.BaseDelayMs = 1;
  O.Retry.MaxDelayMs = 2;
  return O;
}

/// Everything observable about a job except the Detail prose (which may
/// embed the store path and therefore legitimately differs between the
/// separate stores the sweeps under comparison use).
void expectSameOutcomes(const SweepReport &A, const SweepReport &B,
                        const char *What) {
  ASSERT_EQ(A.Jobs.size(), B.Jobs.size()) << What;
  for (size_t I = 0; I != A.Jobs.size(); ++I) {
    const JobOutcome &JA = A.Jobs[I];
    const JobOutcome &JB = B.Jobs[I];
    EXPECT_EQ(JA.Func, JB.Func) << What << " job " << I;
    EXPECT_EQ(JA.Status, JB.Status)
        << What << " job " << JA.Func << ": " << JA.Detail << " vs "
        << JB.Detail;
    EXPECT_EQ(JA.Attempts, JB.Attempts) << What << " job " << JA.Func;
    EXPECT_EQ(JA.Stop, JB.Stop) << What << " job " << JA.Func;
    EXPECT_EQ(JA.Nodes, JB.Nodes) << What << " job " << JA.Func;
    EXPECT_EQ(JA.NewlyQuarantined, JB.NewlyQuarantined)
        << What << " job " << JA.Func;
  }
  EXPECT_EQ(A.Error, B.Error) << What;
  EXPECT_EQ(A.exitCode(), B.exitCode()) << What;
}

/// Byte-compares the artifact of \p Kind for every function's root
/// between two stores (missing in both is also "equal").
void expectSameArtifacts(Module &M, const std::string &DirA,
                         const std::string &DirB, store::ArtifactKind Kind,
                         const char *What) {
  store::ArtifactStore A(DirA), B(DirB);
  for (Function &F : M.Functions) {
    const HashTriple Root = canonicalize(F, false, true).Hash;
    const std::vector<uint8_t> BytesA = readFile(A.pathFor(Root, Kind));
    const std::vector<uint8_t> BytesB = readFile(B.pathFor(Root, Kind));
    EXPECT_EQ(BytesA, BytesB) << What << " fn " << F.Name;
  }
}

TEST(SweepDeterminism, CrashRecoverySweepIsIdenticalForAnyJobCount) {
  // f crashes on its first attempt and recovers on the second while g, h,
  // and k enumerate cleanly; every job count must tell the same story.
  const std::string Input = sourceFile("recover", SweepSource);
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("s:1:segv", Plan));

  std::vector<SweepReport> Reports;
  std::vector<std::string> Stores;
  for (const uint64_t Jobs : {1u, 2u, 8u}) {
    SupervisorOptions O =
        baseOptions(Input, freshDir("recover-j" + std::to_string(Jobs)));
    O.Faults = &Plan;
    O.FaultSpec = "s:1:segv";
    O.FaultFunc = "f";
    O.FaultAttempts = 1; // Attempt 1 crashes, attempt 2 is clean.
    O.Retry.MaxRetries = 2;
    O.SweepJobs = Jobs;
    Stores.push_back(O.StoreDir);
    Reports.push_back(superviseModule(PM, M, O));
    ASSERT_EQ(Reports.back().Error, "");
    ASSERT_EQ(Reports.back().Jobs.size(), 4u);
  }

  // The baseline (jobs=1) has the expected shape: f recovered, the rest
  // clean, report in function order.
  EXPECT_EQ(Reports[0].Jobs[0].Func, "f");
  EXPECT_EQ(Reports[0].Jobs[0].Status, JobStatus::Ok)
      << Reports[0].Jobs[0].Detail;
  EXPECT_EQ(Reports[0].Jobs[0].Attempts, 2u);
  for (size_t I = 1; I != 4; ++I)
    EXPECT_EQ(Reports[0].Jobs[I].Attempts, 1u)
        << Reports[0].Jobs[I].Func;
  EXPECT_EQ(Reports[0].exitCode(), ExitCode::Ok);

  expectSameOutcomes(Reports[0], Reports[1], "jobs 1 vs 2");
  expectSameOutcomes(Reports[0], Reports[2], "jobs 1 vs 8");
  for (size_t I = 1; I != Stores.size(); ++I)
    expectSameArtifacts(M, Stores[0], Stores[I],
                        store::ArtifactKind::Result, "result");
}

TEST(SweepDeterminism, QuarantineRecordsAreIdenticalForAnyJobCount) {
  // f burns its whole retry ladder crashing; the quarantine record and
  // every healthy artifact must be byte-identical across job counts.
  const std::string Input = sourceFile("quarantine", SweepSource);
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("s:1:segv", Plan));

  std::vector<SweepReport> Reports;
  std::vector<std::string> Stores;
  for (const uint64_t Jobs : {1u, 2u, 8u}) {
    SupervisorOptions O = baseOptions(
        Input, freshDir("quarantine-j" + std::to_string(Jobs)));
    O.Faults = &Plan;
    O.FaultSpec = "s:1:segv";
    O.FaultFunc = "f";
    O.Retry.MaxRetries = 1;
    O.SweepJobs = Jobs;
    Stores.push_back(O.StoreDir);
    Reports.push_back(superviseModule(PM, M, O));
    ASSERT_EQ(Reports.back().Error, "");
  }

  EXPECT_EQ(Reports[0].Jobs[0].Status, JobStatus::Degraded)
      << Reports[0].Jobs[0].Detail;
  EXPECT_TRUE(Reports[0].Jobs[0].NewlyQuarantined);
  EXPECT_EQ(Reports[0].exitCode(), ExitCode::WorkerCrash);

  expectSameOutcomes(Reports[0], Reports[1], "jobs 1 vs 2");
  expectSameOutcomes(Reports[0], Reports[2], "jobs 1 vs 8");
  for (size_t I = 1; I != Stores.size(); ++I) {
    expectSameArtifacts(M, Stores[0], Stores[I],
                        store::ArtifactKind::Result, "result");
    expectSameArtifacts(M, Stores[0], Stores[I],
                        store::ArtifactKind::Quarantine, "quarantine");
  }
}

TEST(SweepDeterminism, SameRootJobsSerializeAndHitTheCache) {
  // Two functions with identical bodies canonicalize to the same root and
  // therefore share a store key. Even at high concurrency the second must
  // wait for the first and then be served from the cache — exactly the
  // sequential outcome — instead of racing it on the artifact file.
  const char *TwinSource =
      "int a(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}"
      "int b(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";
  const std::string Input = sourceFile("twins", TwinSource);
  Module M = compileOrDie(TwinSource);
  ASSERT_EQ(canonicalize(functionNamed(M, "a"), false, true).Hash,
            canonicalize(functionNamed(M, "b"), false, true).Hash);
  PhaseManager PM;
  SupervisorOptions O = baseOptions(Input, freshDir("twins"));
  O.SweepJobs = 8;

  SweepReport R = superviseModule(PM, M, O);
  ASSERT_EQ(R.Error, "");
  ASSERT_EQ(R.Jobs.size(), 2u);
  EXPECT_EQ(R.Jobs[0].Func, "a");
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Ok) << R.Jobs[0].Detail;
  EXPECT_EQ(R.Jobs[1].Func, "b");
  EXPECT_EQ(R.Jobs[1].Status, JobStatus::Cached) << R.Jobs[1].Detail;
  EXPECT_EQ(R.Jobs[1].Attempts, 0u);
}

TEST(SweepDeterminism, ConcurrentSweepCompletesEveryJobInOrder) {
  // Plain concurrency smoke: four healthy jobs at --sweep-jobs=4 all
  // finish Ok and the report stays in function order.
  const std::string Input = sourceFile("smoke", SweepSource);
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;
  SupervisorOptions O = baseOptions(Input, freshDir("smoke"));
  O.SweepJobs = 4;

  SweepReport R = superviseModule(PM, M, O);
  ASSERT_EQ(R.Error, "");
  ASSERT_EQ(R.Jobs.size(), 4u);
  const char *Expected[] = {"f", "g", "h", "k"};
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(R.Jobs[I].Func, Expected[I]);
    EXPECT_EQ(R.Jobs[I].Status, JobStatus::Ok) << R.Jobs[I].Detail;
    EXPECT_GT(R.Jobs[I].Nodes, 0u);
  }
  EXPECT_EQ(R.exitCode(), ExitCode::Ok);
}

} // namespace
