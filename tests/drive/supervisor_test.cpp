//===- supervisor_test.cpp - Supervised sweep tests ----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The supervisor's contract: a worker that crashes, hangs, or babbles
// costs one classified job (retried, then quarantined and degraded) and
// never the sweep; a worker that recovers within its retry budget leaves
// a result byte-identical to an uninterrupted run. The integration tests
// spawn the real posec binary (POSE_POSEC_PATH, injected by CMake) with
// crash-class fault injection.
//
//===----------------------------------------------------------------------===//

#include "src/drive/Supervisor.h"

#include "src/core/Canonical.h"
#include "src/core/Enumerator.h"
#include "src/drive/ExitCodes.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseGuard.h"
#include "src/opt/PhaseManager.h"
#include "src/store/ArtifactStore.h"
#include "src/store/StoreDriver.h"
#include "tests/common/Helpers.h"

#include <csignal>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace pose;
using namespace pose::drive;
using namespace pose::testhelpers;

namespace {

// Two functions: "f" (the fault target in the crash tests) and a clean
// bystander "g" that must keep enumerating no matter what happens to f.
const char *SweepSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}"
    "int g(int a,int b){return a+b+7;}";

std::string freshDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "pose-drive-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Writes the sweep source to a throwaway .mc file and returns its path.
std::string sourceFile(const char *Name) {
  std::string Path = ::testing::TempDir() + "pose-drive-" + Name + ".mc";
  std::ofstream Out(Path, std::ios::trunc);
  Out << SweepSource;
  return Path;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

/// Baseline options: real posec, fast retries, a store under \p Dir.
SupervisorOptions baseOptions(const std::string &Input,
                              const std::string &StoreDir) {
  SupervisorOptions O;
  O.PosecPath = POSE_POSEC_PATH;
  O.InputPath = Input;
  O.StoreDir = StoreDir;
  O.Budget = 50'000;
  O.Retry.BaseDelayMs = 1;
  O.Retry.MaxDelayMs = 2;
  return O;
}

const JobOutcome *jobNamed(const SweepReport &R, const std::string &Func) {
  for (const JobOutcome &J : R.Jobs)
    if (J.Func == Func)
      return &J;
  return nullptr;
}

TEST(WorkerFrame, RoundTripsEveryStopReason) {
  for (uint8_t V = 0; V <= static_cast<uint8_t>(StopReason::WorkerCrash);
       ++V) {
    WorkerFrame F;
    F.Stop = static_cast<StopReason>(V);
    F.Nodes = 122;
    F.Attempted = 1480;
    F.CheckpointSaved = (V % 2) != 0;
    WorkerFrame Out;
    ASSERT_TRUE(parseWorkerFrame(renderWorkerFrame(F), Out))
        << renderWorkerFrame(F);
    EXPECT_EQ(Out.Stop, F.Stop);
    EXPECT_EQ(Out.Nodes, F.Nodes);
    EXPECT_EQ(Out.Attempted, F.Attempted);
    EXPECT_EQ(Out.CheckpointSaved, F.CheckpointSaved);
  }
}

TEST(WorkerFrame, FoundAmongOtherOutputLines) {
  WorkerFrame Out;
  EXPECT_TRUE(parseWorkerFrame(
      "note: resuming from checkpoint\n"
      "POSEWRK1 stop=complete nodes=7 attempted=9 checkpoint=0\n"
      "trailing chatter\n",
      Out));
  EXPECT_EQ(Out.Stop, StopReason::Complete);
  EXPECT_EQ(Out.Nodes, 7u);
}

TEST(WorkerFrame, MalformedLinesAreRejected) {
  WorkerFrame Out;
  // A clean exit with no valid frame must read as a protocol failure.
  EXPECT_FALSE(parseWorkerFrame("", Out));
  EXPECT_FALSE(parseWorkerFrame("all good, trust me\n", Out));
  EXPECT_FALSE(parseWorkerFrame("POSEWRK1 stop=complete\n", Out));
  EXPECT_FALSE(parseWorkerFrame(
      "POSEWRK1 stop=sideways nodes=1 attempted=1 checkpoint=0\n", Out));
  EXPECT_FALSE(parseWorkerFrame(
      "POSEWRK1 stop=complete nodes=x attempted=1 checkpoint=0\n", Out));
  EXPECT_FALSE(parseWorkerFrame(
      "POSEWRK1 stop=complete nodes=1 attempted=1 checkpoint=2\n", Out));
  EXPECT_FALSE(parseWorkerFrame(
      "POSEWRK1 stop=complete nodes=1 attempted=1 checkpoint=0 extra\n",
      Out));
}

TEST(ExitCodes, StopReasonMapIsStable) {
  // Budget stops are final fingerprinted results: success.
  EXPECT_EQ(exitCodeForStop(StopReason::Complete), ExitCode::Ok);
  EXPECT_EQ(exitCodeForStop(StopReason::LevelBudget), ExitCode::Ok);
  EXPECT_EQ(exitCodeForStop(StopReason::NodeBudget), ExitCode::Ok);
  EXPECT_EQ(exitCodeForStop(StopReason::VerifierFailure),
            ExitCode::VerifyFailure);
  EXPECT_EQ(exitCodeForStop(StopReason::Deadline), ExitCode::Deadline);
  EXPECT_EQ(exitCodeForStop(StopReason::MemoryBudget),
            ExitCode::MemoryBudget);
  EXPECT_EQ(exitCodeForStop(StopReason::Cancelled), ExitCode::Cancelled);
  EXPECT_EQ(exitCodeForStop(StopReason::InternalError), ExitCode::Error);
  EXPECT_EQ(exitCodeForStop(StopReason::WorkerCrash),
            ExitCode::WorkerCrash);
}

TEST(ExitCodes, SweepSeverityPrecedence) {
  SweepReport R;
  EXPECT_EQ(R.exitCode(), ExitCode::Ok);
  JobOutcome Ok;
  Ok.Status = JobStatus::Ok;
  R.Jobs.push_back(Ok);
  EXPECT_EQ(R.exitCode(), ExitCode::Ok);

  JobOutcome Skipped;
  Skipped.Status = JobStatus::Quarantined;
  R.Jobs.push_back(Skipped);
  EXPECT_EQ(R.exitCode(), ExitCode::QuarantinedSkip);

  JobOutcome Budget;
  Budget.Status = JobStatus::Degraded;
  Budget.Stop = StopReason::Deadline;
  R.Jobs.push_back(Budget);
  EXPECT_EQ(R.exitCode(), ExitCode::Deadline);

  JobOutcome Crashed;
  Crashed.Status = JobStatus::Degraded;
  Crashed.Stop = StopReason::WorkerCrash;
  R.Jobs.push_back(Crashed);
  EXPECT_EQ(R.exitCode(), ExitCode::WorkerCrash);

  JobOutcome Failed;
  Failed.Status = JobStatus::Failed;
  R.Jobs.push_back(Failed);
  EXPECT_EQ(R.exitCode(), ExitCode::Error);

  R.Jobs.clear();
  R.Error = "store unusable";
  EXPECT_EQ(R.exitCode(), ExitCode::Error);
}

TEST(Supervisor, CleanSweepThenFullyCached) {
  const std::string Input = sourceFile("clean");
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;
  SupervisorOptions O = baseOptions(Input, freshDir("clean"));

  SweepReport First = superviseModule(PM, M, O);
  ASSERT_EQ(First.Error, "");
  ASSERT_EQ(First.Jobs.size(), 2u);
  for (const JobOutcome &J : First.Jobs) {
    EXPECT_EQ(J.Status, JobStatus::Ok) << J.Func << ": " << J.Detail;
    EXPECT_EQ(J.Stop, StopReason::Complete) << J.Func;
    EXPECT_EQ(J.Attempts, 1u) << J.Func;
    EXPECT_GT(J.Nodes, 0u) << J.Func;
  }
  EXPECT_EQ(First.exitCode(), ExitCode::Ok);

  // Second sweep: everything served from the store, no workers spawned.
  SweepReport Second = superviseModule(PM, M, O);
  ASSERT_EQ(Second.Jobs.size(), 2u);
  for (const JobOutcome &J : Second.Jobs) {
    EXPECT_EQ(J.Status, JobStatus::Cached) << J.Func << ": " << J.Detail;
    EXPECT_EQ(J.Attempts, 0u) << J.Func;
  }
  EXPECT_EQ(Second.exitCode(), ExitCode::Ok);
}

TEST(Supervisor, AlwaysCrashingJobIsQuarantinedOthersUnaffected) {
  const std::string Input = sourceFile("crash");
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;
  SupervisorOptions O = baseOptions(Input, freshDir("crash"));
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("s:1:segv", Plan));
  O.Faults = &Plan;
  O.FaultSpec = "s:1:segv";
  O.FaultFunc = "f";
  O.Retry.MaxRetries = 1;

  SweepReport R = superviseModule(PM, M, O);
  ASSERT_EQ(R.Error, "");
  const JobOutcome *F = jobNamed(R, "f");
  const JobOutcome *G = jobNamed(R, "g");
  ASSERT_NE(F, nullptr);
  ASSERT_NE(G, nullptr);

  // f burned the whole ladder crashing: MaxRetries + 1 spawns, then the
  // quarantine record and a degraded fallback result.
  EXPECT_EQ(F->Status, JobStatus::Degraded) << F->Detail;
  EXPECT_EQ(F->Attempts, 2u);
  EXPECT_EQ(F->Stop, StopReason::WorkerCrash);
  EXPECT_TRUE(F->NewlyQuarantined);
  EXPECT_NE(F->Detail.find("signal"), std::string::npos) << F->Detail;

  // The bystander is untouched.
  EXPECT_EQ(G->Status, JobStatus::Ok) << G->Detail;
  EXPECT_EQ(G->Stop, StopReason::Complete);
  EXPECT_EQ(R.exitCode(), ExitCode::WorkerCrash);

  // The persisted record carries the crash metadata.
  store::ArtifactStore Store(O.StoreDir);
  const HashTriple Root =
      canonicalize(functionNamed(M, "f"), false, true).Hash;
  store::QuarantineRecord Q;
  std::string Err;
  EnumeratorConfig KeyCfg;
  KeyCfg.MaxLevelSequences = O.Budget;
  ASSERT_EQ(Store.loadQuarantine(Root, store::configFingerprint(KeyCfg), Q,
                                 Err),
            store::LoadStatus::Hit)
      << Err;
  EXPECT_EQ(Q.Failure, store::WorkerFailure::Signal);
  EXPECT_EQ(Q.Signal, SIGSEGV);
  EXPECT_EQ(Q.Attempts, 2u);

  // A later sweep skips the quarantined job with a diagnostic instead of
  // burning the retry ladder again; the clean job is served cached.
  SweepReport Again = superviseModule(PM, M, O);
  const JobOutcome *F2 = jobNamed(Again, "f");
  const JobOutcome *G2 = jobNamed(Again, "g");
  ASSERT_NE(F2, nullptr);
  ASSERT_NE(G2, nullptr);
  EXPECT_EQ(F2->Status, JobStatus::Quarantined) << F2->Detail;
  EXPECT_EQ(F2->Attempts, 0u);
  EXPECT_NE(F2->Detail.find("quarantined"), std::string::npos);
  EXPECT_EQ(G2->Status, JobStatus::Cached) << G2->Detail;
  EXPECT_EQ(Again.exitCode(), ExitCode::QuarantinedSkip);
}

TEST(Supervisor, HangingWorkerIsKilledAndClassifiedAsTimeout) {
  const std::string Input = sourceFile("hang");
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;
  SupervisorOptions O = baseOptions(Input, freshDir("hang"));
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("s:1:hang", Plan));
  O.Faults = &Plan;
  O.FaultSpec = "s:1:hang";
  O.FaultFunc = "f";
  O.Retry.MaxRetries = 0;
  O.WorkerTimeoutMs = 500;

  SweepReport R = superviseModule(PM, M, O);
  const JobOutcome *F = jobNamed(R, "f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Status, JobStatus::Degraded) << F->Detail;
  EXPECT_EQ(F->Attempts, 1u);
  EXPECT_TRUE(F->NewlyQuarantined);

  store::ArtifactStore Store(O.StoreDir);
  const HashTriple Root =
      canonicalize(functionNamed(M, "f"), false, true).Hash;
  EnumeratorConfig KeyCfg;
  KeyCfg.MaxLevelSequences = O.Budget;
  store::QuarantineRecord Q;
  std::string Err;
  ASSERT_EQ(Store.loadQuarantine(Root, store::configFingerprint(KeyCfg), Q,
                                 Err),
            store::LoadStatus::Hit)
      << Err;
  EXPECT_EQ(Q.Failure, store::WorkerFailure::Timeout);
}

TEST(Supervisor, CrashTwiceThenSucceedMatchesUninterruptedRun) {
  // The retry ladder's headline guarantee: a worker that SIGSEGVs on its
  // first two attempts and completes on the third leaves the exact bytes
  // an uninterrupted run leaves (crash faults are execution-only and
  // excluded from the store fingerprint).
  const std::string Input = sourceFile("retry");
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;

  SupervisorOptions Clean = baseOptions(Input, freshDir("retry-clean"));
  SweepReport CleanRun = superviseModule(PM, M, Clean);
  ASSERT_EQ(CleanRun.exitCode(), ExitCode::Ok);

  SupervisorOptions O = baseOptions(Input, freshDir("retry-faulted"));
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("s:1:segv", Plan));
  O.Faults = &Plan;
  O.FaultSpec = "s:1:segv";
  O.FaultFunc = "f";
  O.FaultAttempts = 2; // Attempts 1 and 2 crash; attempt 3 is clean.
  O.Retry.MaxRetries = 2;

  SweepReport R = superviseModule(PM, M, O);
  const JobOutcome *F = jobNamed(R, "f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Status, JobStatus::Ok) << F->Detail;
  EXPECT_EQ(F->Attempts, 3u);
  EXPECT_EQ(F->Stop, StopReason::Complete);
  EXPECT_FALSE(F->NewlyQuarantined);
  EXPECT_EQ(R.exitCode(), ExitCode::Ok);

  // Byte-identical stored artifact, and no lingering quarantine record.
  const HashTriple Root =
      canonicalize(functionNamed(M, "f"), false, true).Hash;
  store::ArtifactStore CleanStore(Clean.StoreDir);
  store::ArtifactStore FaultStore(O.StoreDir);
  const std::vector<uint8_t> A =
      readFile(CleanStore.pathFor(Root, store::ArtifactKind::Result));
  const std::vector<uint8_t> B =
      readFile(FaultStore.pathFor(Root, store::ArtifactKind::Result));
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B);
  EnumeratorConfig KeyCfg;
  KeyCfg.MaxLevelSequences = O.Budget;
  store::QuarantineRecord Q;
  std::string Err;
  EXPECT_EQ(FaultStore.loadQuarantine(Root, store::configFingerprint(KeyCfg),
                                      Q, Err),
            store::LoadStatus::Miss);
}

TEST(Supervisor, DegradedJobFallsBackToNewestCheckpoint) {
  // Stage a checkpoint the way a budget-stopped run would, then make
  // every supervised attempt crash *after* the checkpoint's progress
  // point: degradation must surface the checkpoint's partial DAG, not
  // the batch-compile fallback.
  const std::string Input = sourceFile("ckpt");
  Module M = compileOrDie(SweepSource);
  PhaseManager PM;
  SupervisorOptions O = baseOptions(Input, freshDir("ckpt"));
  O.Retry.MaxRetries = 0;

  EnumeratorConfig StageCfg;
  StageCfg.MaxLevelSequences = O.Budget;
  StageCfg.MaxMemoryBytes = 20'000; // Execution-only: same fingerprint.
  store::DriveResult Staged = store::driveEnumeration(
      PM, StageCfg, functionNamed(M, "f"), O.StoreDir, /*Resume=*/false);
  ASSERT_TRUE(Staged.Ok) << Staged.Error;
  ASSERT_EQ(Staged.Result.Stop, StopReason::MemoryBudget);
  ASSERT_TRUE(Staged.CheckpointSaved);

  // Pick a coordinate past the checkpoint: application counters persist
  // across resume, so the (N+1)-th CSE application happens post-resume.
  const HashTriple Root =
      canonicalize(functionNamed(M, "f"), false, true).Hash;
  EnumeratorConfig KeyCfg;
  KeyCfg.MaxLevelSequences = O.Budget;
  store::ArtifactStore Store(O.StoreDir);
  EnumerationCheckpoint C;
  std::string Err;
  ASSERT_EQ(Store.loadCheckpoint(Root, store::configFingerprint(KeyCfg), C,
                                 Err),
            store::LoadStatus::Hit)
      << Err;
  const uint64_t Nth =
      C.AppCount[static_cast<size_t>(PhaseId::Cse)] + 1;
  const std::string Spec = "c:" + std::to_string(Nth) + ":segv";
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse(Spec, Plan));
  O.Faults = &Plan;
  O.FaultSpec = Spec;
  O.FaultFunc = "f";

  SweepReport R = superviseModule(PM, M, O);
  const JobOutcome *F = jobNamed(R, "f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Status, JobStatus::Degraded) << F->Detail;
  EXPECT_EQ(F->Stop, StopReason::WorkerCrash);
  EXPECT_EQ(F->Nodes, C.Partial.Nodes.size());
  EXPECT_NE(F->Detail.find("checkpoint"), std::string::npos) << F->Detail;
}

} // namespace
