//===- quarantine_cli_test.cpp - posec quarantine operator surface --------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the standalone quarantine modes, driving the real
// posec binary: --list-quarantine prints persisted records without
// running a sweep, --clear-quarantine removes them, and a cleared
// function is retried (not skipped) by the next supervised sweep.
//
//===----------------------------------------------------------------------===//

#include "src/support/Subprocess.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace pose;

namespace {

const char *Source =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}"
    "int g(int a,int b){return a+b+7;}";

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "pose-qcli-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

std::string sourceFile(const char *Name) {
  std::string Path = ::testing::TempDir() + "pose-qcli-" + Name + ".mc";
  std::ofstream Out(Path, std::ios::trunc);
  Out << Source;
  return Path;
}

SubprocessResult runPosec(std::vector<std::string> Args) {
  SubprocessSpec Spec;
  Spec.Argv.push_back(POSE_POSEC_PATH);
  for (std::string &A : Args)
    Spec.Argv.push_back(std::move(A));
  Spec.TimeoutMs = 60'000;
  return runSubprocess(Spec);
}

/// Sweeps with f crashing until its single-attempt ladder is exhausted,
/// leaving a persisted quarantine record for f (and a clean result for g).
void quarantineF(const std::string &Input, const std::string &Store) {
  SubprocessResult R = runPosec({Input, "--supervise", "--store=" + Store,
                                 "--budget=2000", "--inject-fault=s:1:segv",
                                 "--fault-func=f", "--max-retries=1"});
  ASSERT_EQ(R.Kind, ExitKind::Exited) << R.Error;
  ASSERT_EQ(R.ExitCode, 7) << R.Stderr; // WorkerCrash: f was quarantined.
}

TEST(QuarantineCli, EmptyStoreListsNothing) {
  const std::string Input = sourceFile("empty");
  SubprocessResult R = runPosec(
      {Input, "--list-quarantine", "--store=" + freshDir("empty")});
  ASSERT_EQ(R.Kind, ExitKind::Exited) << R.Error;
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stdout.find("no quarantined jobs"), std::string::npos)
      << R.Stdout;
}

TEST(QuarantineCli, ListShowsPersistedRecordWithoutSweeping) {
  const std::string Input = sourceFile("list");
  const std::string Store = freshDir("list");
  quarantineF(Input, Store);

  // Quarantine records are keyed by the enumerator configuration (like
  // --resume and --analyze-store), so the listing passes the same budget
  // the sweep ran under.
  SubprocessResult R = runPosec(
      {Input, "--list-quarantine", "--store=" + Store, "--budget=2000"});
  ASSERT_EQ(R.Kind, ExitKind::Exited) << R.Error;
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  // --max-retries=1 is one retry on top of the initial attempt.
  EXPECT_NE(R.Stdout.find("quarantined after 2 attempt(s)"),
            std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("f"), std::string::npos) << R.Stdout;
  // g enumerated cleanly and must not be listed as quarantined.
  EXPECT_EQ(R.Stdout.find("g "), std::string::npos) << R.Stdout;
}

TEST(QuarantineCli, ListRequiresAStore) {
  const std::string Input = sourceFile("nostore");
  SubprocessResult R = runPosec({Input, "--list-quarantine"});
  ASSERT_EQ(R.Kind, ExitKind::Exited) << R.Error;
  EXPECT_EQ(R.ExitCode, 2) << R.Stderr; // Usage.
}

TEST(QuarantineCli, ClearedFunctionIsRetriedByTheNextSweep) {
  const std::string Input = sourceFile("clear");
  const std::string Store = freshDir("clear");
  quarantineF(Input, Store);

  // Without clearing, a fault-free re-sweep still skips f (exit 8).
  SubprocessResult Skip = runPosec(
      {Input, "--supervise", "--store=" + Store, "--budget=2000"});
  ASSERT_EQ(Skip.Kind, ExitKind::Exited) << Skip.Error;
  EXPECT_EQ(Skip.ExitCode, 8) << Skip.Stderr; // QuarantinedSkip.

  SubprocessResult Clear = runPosec(
      {Input, "--clear-quarantine", "--store=" + Store, "--budget=2000"});
  ASSERT_EQ(Clear.Kind, ExitKind::Exited) << Clear.Error;
  EXPECT_EQ(Clear.ExitCode, 0) << Clear.Stderr;
  EXPECT_NE(Clear.Stdout.find("cleared"), std::string::npos)
      << Clear.Stdout;

  // The record is gone...
  SubprocessResult List = runPosec(
      {Input, "--list-quarantine", "--store=" + Store, "--budget=2000"});
  ASSERT_EQ(List.Kind, ExitKind::Exited) << List.Error;
  EXPECT_NE(List.Stdout.find("no quarantined jobs"), std::string::npos)
      << List.Stdout;

  // ...and a healthy re-sweep now enumerates f instead of skipping it.
  SubprocessResult Retry = runPosec(
      {Input, "--supervise", "--store=" + Store, "--budget=2000"});
  ASSERT_EQ(Retry.Kind, ExitKind::Exited) << Retry.Error;
  EXPECT_EQ(Retry.ExitCode, 0) << Retry.Stderr << Retry.Stdout;
}

} // namespace
