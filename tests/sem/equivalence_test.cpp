//===- equivalence_test.cpp - Observational-equivalence collapse ---------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The semantic bucketing layer: behavior digests (exact for Ok runs, trap
// class only for traps), whole-DAG equivalence records, collapse-class
// invariants, and the differential phase-bug gate — proven able to catch
// an injected wrong-code fault and to stay quiet on a clean space.
//
//===----------------------------------------------------------------------===//

#include "src/sem/Equivalence.h"

#include "src/core/DagPaths.h"
#include "src/core/Enumerator.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseGuard.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *LoopSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

RunResult okRun(int32_t Ret, std::vector<int32_t> Out) {
  RunResult R;
  R.Ok = true;
  R.ReturnValue = Ret;
  R.Output = std::move(Out);
  return R;
}

RunResult trapRun(const std::string &Error, int32_t Ret,
                  std::vector<int32_t> Out) {
  RunResult R;
  R.Ok = false;
  R.Error = Error;
  R.ReturnValue = Ret;
  R.Output = std::move(Out);
  return R;
}

TEST(BehaviorDigest, OkRunsCompareExactly) {
  EXPECT_EQ(sem::behaviorDigest(okRun(3, {1, 2})),
            sem::behaviorDigest(okRun(3, {1, 2})));
  EXPECT_NE(sem::behaviorDigest(okRun(3, {1, 2})),
            sem::behaviorDigest(okRun(4, {1, 2})));
  EXPECT_NE(sem::behaviorDigest(okRun(3, {1, 2})),
            sem::behaviorDigest(okRun(3, {2, 1})));
  EXPECT_NE(sem::behaviorDigest(okRun(3, {})),
            sem::behaviorDigest(okRun(3, {0})));
}

TEST(BehaviorDigest, TrapsCompareByClassAlone) {
  // Legal rescheduling can move a trap relative to out() calls, so the
  // partial output and return value must not enter the digest.
  EXPECT_EQ(sem::behaviorDigest(trapRun("load out of bounds in f", 0, {1})),
            sem::behaviorDigest(trapRun("load out of bounds in g", 7, {})));
  EXPECT_NE(sem::behaviorDigest(trapRun("load out of bounds in f", 0, {})),
            sem::behaviorDigest(trapRun("division by zero in f", 0, {})));
  // Ok never collides with a trap, even with identical payloads.
  EXPECT_NE(sem::behaviorDigest(okRun(0, {})),
            sem::behaviorDigest(trapRun("division by zero in f", 0, {})));
}

TEST(Equivalence, CleanSpaceCollapsesToOneClass) {
  Module M = compileOrDie(LoopSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Enumerator E(PM, Cfg);
  const EnumerationResult R = E.enumerate(F);
  ASSERT_TRUE(R.complete());
  ASSERT_GT(R.Nodes.size(), 1u);

  const sem::EquivRecord Rec =
      sem::computeEquivalence(M, F, PM, R, sem::EquivInputs());
  ASSERT_EQ(Rec.NodeBehavior.size(), R.Nodes.size());
  ASSERT_EQ(Rec.NodeDynamic.size(), R.Nodes.size());
  ASSERT_EQ(Rec.NodeAllOk.size(), R.Nodes.size());
  EXPECT_EQ(Rec.NumParams, 1u);
  EXPECT_FALSE(Rec.UsedVectors.empty());
  for (size_t I = 1; I < Rec.UsedVectors.size(); ++I)
    EXPECT_LT(Rec.UsedVectors[I - 1], Rec.UsedVectors[I]);

  // Phases preserve semantics: every instance behaves like the root.
  for (uint64_t B : Rec.NodeBehavior)
    EXPECT_EQ(B, Rec.NodeBehavior[0]);

  const sem::CollapseReport C = sem::collapseClasses(R, Rec);
  EXPECT_EQ(C.Instances, R.Nodes.size());
  EXPECT_TRUE(C.Certified);
  ASSERT_EQ(C.Classes.size(), 1u);
  EXPECT_GT(C.collapsePercent(), 0.0);
  const sem::EquivClass &Cl = C.Classes[0];
  EXPECT_EQ(Cl.Nodes.size(), R.Nodes.size());
  EXPECT_EQ(Rec.NodeDynamic[Cl.BestNode], Cl.MinDynamic);
  EXPECT_LE(Cl.MinDynamic, Cl.MaxDynamic);
  ASSERT_NE(Cl.BestLeaf, 0xFFFFFFFFu);
  EXPECT_TRUE(R.Nodes[Cl.BestLeaf].isLeaf());

  const sem::DivergenceReport D =
      sem::findDivergence(M, F, PM, R, Rec, sem::EquivInputs());
  EXPECT_FALSE(D.Diverged);
}

TEST(Equivalence, ClassPartitionIsExactForAnyRecord) {
  Module M = compileOrDie(LoopSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Enumerator E(PM, Cfg);
  const EnumerationResult R = E.enumerate(F);

  // Force a multi-class bucketing by hand-editing the record: classes
  // must exactly partition the nodes whatever the digests say.
  sem::EquivRecord Rec =
      sem::computeEquivalence(M, F, PM, R, sem::EquivInputs());
  for (size_t I = 0; I < Rec.NodeBehavior.size(); I += 3)
    Rec.NodeBehavior[I] ^= 0xDEAD;
  const sem::CollapseReport C = sem::collapseClasses(R, Rec);
  EXPECT_GT(C.Classes.size(), 1u);
  size_t Members = 0;
  for (const sem::EquivClass &Cl : C.Classes) {
    Members += Cl.Nodes.size();
    for (uint32_t Id : Cl.Nodes)
      EXPECT_EQ(Rec.NodeBehavior[Id], Cl.Behavior);
  }
  EXPECT_EQ(Members, R.Nodes.size());
}

TEST(Equivalence, WrongCodeFaultIsCaughtWithVectorAndSequence) {
  Module M = compileOrDie(LoopSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  FaultPlan Faults;
  ASSERT_TRUE(FaultPlan::parse("s:1:wrongcode", Faults));
  EnumeratorConfig Cfg;
  Cfg.Faults = &Faults;
  Enumerator E(PM, Cfg);
  const EnumerationResult R = E.enumerate(F);
  ASSERT_GT(R.Nodes.size(), 1u);

  sem::EquivInputs In;
  In.Faults = &Faults;
  const sem::EquivRecord Rec = sem::computeEquivalence(M, F, PM, R, In);
  const sem::DivergenceReport D =
      sem::findDivergence(M, F, PM, R, Rec, In);
  ASSERT_TRUE(D.Diverged);
  EXPECT_EQ(D.NodeA, 0u);
  EXPECT_GT(D.NodeB, 0u);
  EXPECT_FALSE(D.SequenceB.empty());
  ASSERT_GE(D.VectorIndex, 0);
  EXPECT_NE(D.BehaviorA, D.BehaviorB);

  // And the collapse view of the same record shows more than one class.
  const sem::CollapseReport C = sem::collapseClasses(R, Rec);
  EXPECT_GT(C.Classes.size(), 1u);
}

TEST(Equivalence, RecordIsDeterministicAcrossRecomputation) {
  Module M = compileOrDie(LoopSource);
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Enumerator E(PM, Cfg);
  const EnumerationResult R = E.enumerate(F);
  const sem::EquivRecord A =
      sem::computeEquivalence(M, F, PM, R, sem::EquivInputs());
  const sem::EquivRecord B =
      sem::computeEquivalence(M, F, PM, R, sem::EquivInputs());
  EXPECT_EQ(A.NodeBehavior, B.NodeBehavior);
  EXPECT_EQ(A.NodeDynamic, B.NodeDynamic);
  EXPECT_EQ(A.NodeAllOk, B.NodeAllOk);
  EXPECT_EQ(A.UsedVectors, B.UsedVectors);
}

} // namespace
