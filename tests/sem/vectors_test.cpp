//===- vectors_test.cpp - Seeded test-vector generation ------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The vector generator is the reproducibility anchor of the equivalence
// subsystem: same (signature, seed, count) must mean the same vectors on
// any host, and the set must open with the boundary sweep the interpreter
// semantics pivot on.
//
//===----------------------------------------------------------------------===//

#include "src/sem/TestVectors.h"

#include <algorithm>
#include <climits>
#include <gtest/gtest.h>

using namespace pose;

namespace {

TEST(TestVectors, SameSeedSameVectors) {
  const auto A = sem::generateVectors(3, 2026, 40);
  const auto B = sem::generateVectors(3, 2026, 40);
  EXPECT_EQ(A, B);
}

TEST(TestVectors, DifferentSeedsDivergeAfterTheBoundarySweep) {
  const auto A = sem::generateVectors(2, 1, 64);
  const auto B = sem::generateVectors(2, 2, 64);
  const size_t Pool = sem::boundaryValues().size();
  ASSERT_EQ(A.size(), 64u);
  // The boundary prefix is seed-independent by design.
  for (size_t I = 0; I != Pool; ++I)
    EXPECT_EQ(A[I], B[I]) << "boundary vector " << I;
  EXPECT_NE(std::vector<std::vector<int32_t>>(A.begin() + Pool, A.end()),
            std::vector<std::vector<int32_t>>(B.begin() + Pool, B.end()));
}

TEST(TestVectors, CountAndArityAreExact) {
  for (uint32_t Params : {1u, 2u, 5u})
    for (uint32_t Count : {1u, 7u, 24u, 100u}) {
      const auto V = sem::generateVectors(Params, 2026, Count);
      ASSERT_EQ(V.size(), Count);
      for (const auto &Vec : V)
        EXPECT_EQ(Vec.size(), Params);
    }
}

TEST(TestVectors, ZeroParamSignatureGetsExactlyOneEmptyVector) {
  // A nullary function has one distinct input; Count must not multiply it.
  const auto V = sem::generateVectors(0, 2026, 24);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_TRUE(V[0].empty());
}

TEST(TestVectors, BoundarySweepBroadcastsThePivotValues) {
  const auto &Pool = sem::boundaryValues();
  // The values the interpreter's trap semantics pivot on must be present.
  for (int32_t Must : {0, -1, 31, 32, 33, INT32_MAX, INT32_MIN})
    EXPECT_NE(std::find(Pool.begin(), Pool.end(), Must), Pool.end())
        << "missing boundary value " << Must;
  const auto V = sem::generateVectors(3, 2026, 24);
  ASSERT_GE(V.size(), Pool.size());
  for (size_t I = 0; I != Pool.size(); ++I) {
    const std::vector<int32_t> Expect(3, Pool[I]);
    EXPECT_EQ(V[I], Expect) << "boundary vector " << I;
  }
}

} // namespace
