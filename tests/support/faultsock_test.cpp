//===- faultsock_test.cpp - FaultSock injector unit tests -----------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The socket fault injector in isolation, over a real socketpair: spec
// parsing (strict, like every other flag in the repo), and the exact
// semantics of each fault kind — a short write really transmits half, an
// EAGAIN storm is bounded at kEagainStormLength, a disconnect is an EOF,
// and a stalled peer delivers one byte then latches the fd dry until
// closed() releases it. The daemon-level consequences (clean drops,
// byte-identical responses, fsck-clean stores) live in tests/serve.
//
//===----------------------------------------------------------------------===//

#include "src/support/FaultSock.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pose;

namespace {

/// A connected non-blocking socketpair; End[0] is the "daemon" side the
/// injector operates on, End[1] the peer.
class Pair {
public:
  int End[2] = {-1, -1};

  Pair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, End), 0);
    for (const int Fd : End) {
      const int Flags = ::fcntl(Fd, F_GETFL, 0);
      ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
    }
  }
  ~Pair() {
    for (const int Fd : End)
      if (Fd >= 0)
        ::close(Fd);
  }

  /// Bytes the peer has sent toward the daemon side.
  void peerSends(const std::string &Bytes) {
    ASSERT_EQ(::send(End[1], Bytes.data(), Bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(Bytes.size()));
  }

  /// Drains and returns whatever reached the peer.
  std::string peerReceives() {
    std::string Got;
    char Buf[4096];
    for (;;) {
      const ssize_t N = ::read(End[1], Buf, sizeof(Buf));
      if (N <= 0)
        return Got;
      Got.append(Buf, static_cast<size_t>(N));
    }
  }
};

std::vector<SockFaultSpec> parsed(const std::string &Text) {
  std::vector<SockFaultSpec> Out;
  EXPECT_TRUE(SockFaultSpec::parse(Text, Out)) << "'" << Text << "'";
  return Out;
}

TEST(FaultSockSpec, ParsesEveryKind) {
  const std::vector<SockFaultSpec> One = parsed("short-write:3");
  ASSERT_EQ(One.size(), 1u);
  EXPECT_EQ(One[0].Kind, SockFaultKind::ShortWrite);
  EXPECT_EQ(One[0].Nth, 3u);

  const std::vector<SockFaultSpec> All =
      parsed("short-write:1,eagain-storm:2,disconnect:3,stalled-peer:4");
  ASSERT_EQ(All.size(), 4u);
  EXPECT_EQ(All[0].Kind, SockFaultKind::ShortWrite);
  EXPECT_EQ(All[1].Kind, SockFaultKind::EagainStorm);
  EXPECT_EQ(All[2].Kind, SockFaultKind::Disconnect);
  EXPECT_EQ(All[3].Kind, SockFaultKind::StalledPeer);
  EXPECT_EQ(All[3].Nth, 4u);
}

TEST(FaultSockSpec, RejectsMalformedSpecs) {
  std::vector<SockFaultSpec> Out;
  for (const char *Bad :
       {"", "disconnect", "disconnect:", ":1", "zz:1", "disconnect:0",
        "disconnect:1x", "disconnect:-1", "disconnect:1,",
        "disconnect:1,,disconnect:2", "disconnect:18446744073709551616",
        "DISCONNECT:1", "disconnect 1"})
    EXPECT_FALSE(SockFaultSpec::parse(Bad, Out)) << "'" << Bad << "'";
}

TEST(FaultSockSpec, NamesAreStable) {
  EXPECT_STREQ(sockFaultKindName(SockFaultKind::ShortWrite), "short-write");
  EXPECT_STREQ(sockFaultKindName(SockFaultKind::EagainStorm),
               "eagain-storm");
  EXPECT_STREQ(sockFaultKindName(SockFaultKind::Disconnect), "disconnect");
  EXPECT_STREQ(sockFaultKindName(SockFaultKind::StalledPeer),
               "stalled-peer");
}

TEST(FaultSock, CleanInjectorIsAPassthrough) {
  Pair P;
  FaultSock Io({});
  P.peerSends("hello");
  char Buf[16];
  EXPECT_EQ(Io.read(P.End[0], Buf, sizeof(Buf)), 5);
  EXPECT_EQ(std::string(Buf, 5), "hello");
  EXPECT_EQ(Io.send(P.End[0], "world!", 6), 6);
  EXPECT_EQ(P.peerReceives(), "world!");
  EXPECT_EQ(Io.fired(), 0u);
  EXPECT_EQ(Io.readOps(), 1u);
  EXPECT_EQ(Io.writeOps(), 1u);
}

TEST(FaultSock, ShortWriteReallyTransmitsHalf) {
  Pair P;
  FaultSock Io(parsed("short-write:2"));
  EXPECT_EQ(Io.send(P.End[0], "first", 5), 5); // Op 1: clean.
  const ssize_t N = Io.send(P.End[0], "abcdefgh", 8);
  EXPECT_EQ(N, 4) << "the faulted send must transmit exactly half";
  // Only the transmitted half reached the wire; the caller's flush loop
  // resumes from there like after any partial write.
  EXPECT_EQ(Io.send(P.End[0], "efgh", 4), 4);
  EXPECT_EQ(P.peerReceives(), "firstabcdefgh");
  EXPECT_EQ(Io.fired(), 1u);
}

TEST(FaultSock, ShortWriteOfOneByteDegradesToEagain) {
  Pair P;
  FaultSock Io(parsed("short-write:1"));
  errno = 0;
  EXPECT_EQ(Io.send(P.End[0], "x", 1), -1);
  EXPECT_EQ(errno, EAGAIN);
  EXPECT_EQ(P.peerReceives(), "");
}

TEST(FaultSock, EagainStormIsBoundedAtSixteenSends) {
  Pair P;
  FaultSock Io(parsed("eagain-storm:1"));
  for (uint64_t I = 0; I != kEagainStormLength; ++I) {
    errno = 0;
    EXPECT_EQ(Io.send(P.End[0], "x", 1), -1) << "storm op " << I;
    EXPECT_EQ(errno, EAGAIN);
  }
  EXPECT_EQ(Io.send(P.End[0], "x", 1), 1)
      << "the storm must end: a stall, not a hang";
  EXPECT_EQ(P.peerReceives(), "x");
  EXPECT_EQ(Io.fired(), kEagainStormLength);
}

TEST(FaultSock, DisconnectReportsEofDespitePendingBytes) {
  Pair P;
  FaultSock Io(parsed("disconnect:2"));
  P.peerSends("ab");
  char Buf[16];
  EXPECT_EQ(Io.read(P.End[0], Buf, sizeof(Buf)), 2); // Op 1: clean.
  P.peerSends("cd"); // In flight, but the peer "vanished".
  EXPECT_EQ(Io.read(P.End[0], Buf, sizeof(Buf)), 0);
  EXPECT_EQ(Io.fired(), 1u);
}

TEST(FaultSock, StalledPeerDeliversOneByteThenLatchesUntilClosed) {
  Pair P;
  FaultSock Io(parsed("stalled-peer:1"));
  P.peerSends("abc");
  char Buf[16];
  EXPECT_EQ(Io.read(P.End[0], Buf, sizeof(Buf)), 1)
      << "exactly one byte: the frame must be torn mid-header";
  EXPECT_EQ(Buf[0], 'a');
  // The fd is now dry forever, however often the poll loop retries and
  // however much data is really pending — and retries do not consume
  // fault indices.
  for (int I = 0; I != 5; ++I) {
    errno = 0;
    EXPECT_EQ(Io.read(P.End[0], Buf, sizeof(Buf)), -1);
    EXPECT_EQ(errno, EAGAIN);
  }
  EXPECT_EQ(Io.readOps(), 1u) << "latched reads must not consume indices";
  // closed() releases the latch: a reused fd number starts clean.
  Io.closed(P.End[0]);
  EXPECT_EQ(Io.read(P.End[0], Buf, sizeof(Buf)), 2);
  EXPECT_EQ(std::string(Buf, 2), "bc");
}

TEST(FaultSock, FaultsOnlyFireAtTheirExactIndex) {
  Pair P;
  FaultSock Io(parsed("disconnect:3"));
  P.peerSends("abcdef");
  char Buf[2];
  EXPECT_EQ(Io.read(P.End[0], Buf, 2), 2);
  EXPECT_EQ(Io.read(P.End[0], Buf, 2), 2);
  EXPECT_EQ(Io.read(P.End[0], Buf, 2), 0) << "op 3 is the fault";
  EXPECT_EQ(Io.read(P.End[0], Buf, 2), 2) << "op 4 is clean again";
  EXPECT_EQ(Io.fired(), 1u);
}

} // namespace
