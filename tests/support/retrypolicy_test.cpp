//===- retrypolicy_test.cpp - Retry schedule tests ------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/RetryPolicy.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

TEST(RetryPolicy, BackoffDoublesAndSaturates) {
  RetryPolicy P;
  P.BaseDelayMs = 100;
  P.MaxDelayMs = 1'000;
  EXPECT_EQ(P.backoffMs(0), 0u); // "Retry 0" is the first attempt.
  EXPECT_EQ(P.backoffMs(1), 100u);
  EXPECT_EQ(P.backoffMs(2), 200u);
  EXPECT_EQ(P.backoffMs(3), 400u);
  EXPECT_EQ(P.backoffMs(4), 800u);
  EXPECT_EQ(P.backoffMs(5), 1'000u);  // Capped.
  EXPECT_EQ(P.backoffMs(60), 1'000u); // No overflow at large counts.
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministic) {
  RetryPolicy P;
  P.BaseDelayMs = 100;
  P.MaxDelayMs = 10'000;
  P.JitterPct = 20;
  for (unsigned Retry = 1; Retry <= 5; ++Retry) {
    for (uint64_t Salt : {0ull, 1ull, 0xDEADBEEFull}) {
      const uint64_t Backoff = P.backoffMs(Retry);
      const uint64_t D = P.delayMs(Retry, Salt);
      EXPECT_GE(D, Backoff);
      EXPECT_LE(D, Backoff + Backoff * P.JitterPct / 100);
      // Reproducible: same (salt, retry) always waits the same time.
      EXPECT_EQ(D, P.delayMs(Retry, Salt));
    }
  }
  // Different salts de-synchronize (true for these specific salts).
  EXPECT_NE(P.delayMs(3, 1), P.delayMs(3, 2));
}

TEST(RetryPolicy, ZeroJitterIsPureBackoff) {
  RetryPolicy P;
  P.BaseDelayMs = 50;
  P.JitterPct = 0;
  EXPECT_EQ(P.delayMs(2, 12345), 100u);
}

TEST(RetryPolicy, RetriesAreBounded) {
  RetryPolicy P;
  P.MaxRetries = 2;
  EXPECT_TRUE(P.shouldRetry(1));
  EXPECT_TRUE(P.shouldRetry(2));
  EXPECT_FALSE(P.shouldRetry(3)); // 3 failures = 3 attempts = budget spent.
  uint64_t Delay = 0;
  EXPECT_FALSE(P.nextDelayMs(3, 0, false, 0, Delay));
}

TEST(RetryPolicy, DeadlineAwareRefusal) {
  RetryPolicy P;
  P.BaseDelayMs = 100;
  P.JitterPct = 0;
  uint64_t Delay = 0;
  // Plenty of budget: retry allowed.
  EXPECT_TRUE(P.nextDelayMs(1, 0, true, 1'000, Delay));
  EXPECT_EQ(Delay, 100u);
  // The backoff would eat the whole remaining budget: refused.
  EXPECT_FALSE(P.nextDelayMs(1, 0, true, 100, Delay));
  EXPECT_FALSE(P.nextDelayMs(1, 0, true, 50, Delay));
  // No deadline: always allowed while retries remain.
  EXPECT_TRUE(P.nextDelayMs(1, 0, false, 0, Delay));
}

TEST(RetryPolicy, ZeroBaseDelayMeansImmediateRetry) {
  RetryPolicy P;
  P.BaseDelayMs = 0;
  uint64_t Delay = 99;
  EXPECT_TRUE(P.nextDelayMs(1, 7, true, 1, Delay));
  EXPECT_EQ(Delay, 0u);
}

} // namespace
