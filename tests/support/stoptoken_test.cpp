//===- stoptoken_test.cpp - Cancellation and resource governor tests ------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/StopToken.h"

#include <gtest/gtest.h>

#include <thread>

using namespace pose;

namespace {

TEST(StopToken, RequestAndReset) {
  StopToken T;
  EXPECT_FALSE(T.stopRequested());
  T.requestStop();
  EXPECT_TRUE(T.stopRequested());
  T.reset();
  EXPECT_FALSE(T.stopRequested());
}

TEST(StopReasonName, AllValuesNamed) {
  EXPECT_STREQ(stopReasonName(StopReason::Complete), "complete");
  EXPECT_STREQ(stopReasonName(StopReason::LevelBudget), "level-budget");
  EXPECT_STREQ(stopReasonName(StopReason::NodeBudget), "node-budget");
  EXPECT_STREQ(stopReasonName(StopReason::Deadline), "deadline");
  EXPECT_STREQ(stopReasonName(StopReason::MemoryBudget), "memory-budget");
  EXPECT_STREQ(stopReasonName(StopReason::Cancelled), "cancelled");
  EXPECT_STREQ(stopReasonName(StopReason::VerifierFailure),
               "verifier-failure");
  EXPECT_STREQ(stopReasonName(StopReason::InternalError), "internal-error");
}

TEST(ResourceGovernor, UnlimitedByDefault) {
  ResourceGovernor Gov;
  EXPECT_TRUE(Gov.unlimited());
  EXPECT_EQ(Gov.check(), StopReason::Complete);
  Gov.charge(1'000'000'000);
  EXPECT_EQ(Gov.check(), StopReason::Complete);
}

TEST(ResourceGovernor, DeadlineExpires) {
  ResourceGovernor Gov;
  Gov.setDeadline(1);
  EXPECT_FALSE(Gov.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(Gov.check(), StopReason::Deadline);
  // Disarming restores Complete.
  Gov.setDeadline(0);
  EXPECT_EQ(Gov.check(), StopReason::Complete);
}

TEST(ResourceGovernor, MemoryAccounting) {
  ResourceGovernor Gov;
  Gov.setMemoryBudget(100);
  Gov.charge(60);
  EXPECT_EQ(Gov.check(), StopReason::Complete);
  Gov.charge(60);
  EXPECT_EQ(Gov.chargedBytes(), 120u);
  EXPECT_EQ(Gov.check(), StopReason::MemoryBudget);
  Gov.release(60);
  EXPECT_EQ(Gov.check(), StopReason::Complete);
  // Release saturates at zero instead of wrapping.
  Gov.release(1'000);
  EXPECT_EQ(Gov.chargedBytes(), 0u);
}

TEST(ResourceGovernor, CancellationWinsOverOtherReasons) {
  StopToken T;
  ResourceGovernor Gov;
  Gov.setStopToken(&T);
  Gov.setMemoryBudget(1);
  Gov.charge(10);
  EXPECT_EQ(Gov.check(), StopReason::MemoryBudget);
  T.requestStop();
  EXPECT_EQ(Gov.check(), StopReason::Cancelled);
}

} // namespace
