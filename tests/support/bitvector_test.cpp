//===- bitvector_test.cpp - BitVector unit tests ---------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/BitVector.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

TEST(BitVector, SetTestReset) {
  BitVector V(130);
  EXPECT_FALSE(V.test(0));
  EXPECT_FALSE(V.test(129));
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(63));
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 2u);
}

TEST(BitVector, UnionReportsChange) {
  BitVector A(70), B(70);
  B.set(3);
  B.set(69);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)); // Second union is a no-op.
  EXPECT_TRUE(A.test(3));
  EXPECT_TRUE(A.test(69));
}

TEST(BitVector, IntersectAndSubtract) {
  BitVector A(10), B(10);
  A.set(1);
  A.set(2);
  A.set(3);
  B.set(2);
  B.set(3);
  B.set(4);
  BitVector C = A;
  C.intersectWith(B);
  EXPECT_FALSE(C.test(1));
  EXPECT_TRUE(C.test(2));
  EXPECT_TRUE(C.test(3));
  A.subtract(B);
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(2));
}

TEST(BitVector, EqualityAndClear) {
  BitVector A(65), B(65);
  EXPECT_EQ(A, B);
  A.set(64);
  EXPECT_NE(A, B);
  A.clear();
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.any());
}

} // namespace
