//===- threadpool_test.cpp - Worker pool tests ---------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

using namespace pose;

namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool Pool(3);
  EXPECT_EQ(Pool.threads(), 4u);
  constexpr size_t N = 10'000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, PoolIsReusableAcrossCalls) {
  ThreadPool Pool(2);
  std::atomic<uint64_t> Sum{0};
  for (int Round = 0; Round != 50; ++Round) {
    Sum.store(0);
    Pool.parallelFor(100, [&](size_t I) {
      Sum.fetch_add(I + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(Sum.load(), 5050u) << "round " << Round;
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  // Jobs == 1: no worker threads; the caller runs everything, in order.
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threads(), 1u);
  std::vector<size_t> Order;
  Pool.parallelFor(5, [&](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EmptyAndSingleCountsAreInline) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelFor(0, [&](size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 0);
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    Calls.fetch_add(1);
  });
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ThreadPool, BodyExceptionRethrownOnSubmittingThread) {
  // A throwing body must not terminate a worker thread (std::terminate);
  // the first exception is captured and rethrown from parallelFor after
  // every index was attempted.
  ThreadPool Pool(3);
  constexpr size_t N = 500;
  std::vector<std::atomic<int>> Hits(N);
  EXPECT_THROW(Pool.parallelFor(N,
                                [&](size_t I) {
                                  Hits[I].fetch_add(
                                      1, std::memory_order_relaxed);
                                  if (I == 123)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
  ThreadPool Pool(2);
  EXPECT_THROW(
      Pool.parallelFor(10, [](size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // The error state must not leak into the next job.
  std::atomic<uint64_t> Sum{0};
  Pool.parallelFor(100, [&](size_t I) {
    Sum.fetch_add(I + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), 5050u);
}

TEST(ThreadPool, InlinePathPropagatesException) {
  // Jobs == 1 / N <= 1 run inline; the contract is the same there.
  ThreadPool Pool(0);
  int Ran = 0;
  EXPECT_THROW(Pool.parallelFor(3,
                                [&](size_t) {
                                  ++Ran;
                                  throw std::logic_error("inline");
                                }),
               std::logic_error);
  EXPECT_EQ(Ran, 3); // Every index is still attempted.
  Pool.parallelFor(2, [&](size_t) { ++Ran; });
  EXPECT_EQ(Ran, 5);
}

TEST(ThreadPool, ConcurrentAccumulationStress) {
  // Hammer the claim path: many tiny items per round, many rounds.
  ThreadPool Pool(4);
  for (int Round = 0; Round != 20; ++Round) {
    constexpr size_t N = 2'000;
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(N, [&](size_t I) {
      Sum.fetch_add(I, std::memory_order_relaxed);
    });
    EXPECT_EQ(Sum.load(), static_cast<uint64_t>(N) * (N - 1) / 2);
  }
}

} // namespace
