//===- rng_test.cpp - PRNG unit tests --------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace pose;

namespace {

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  // All seven values should occur in 2000 draws.
  EXPECT_EQ(Seen.size(), 7u);
}

} // namespace
