//===- str_test.cpp - String helper unit tests ------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Str.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

TEST(Str, PadLeft) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(Str, PadRight) {
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

TEST(Str, FmtDouble) {
  EXPECT_EQ(fmtDouble(0.5, 2), "0.50");
  EXPECT_EQ(fmtDouble(37.849, 1), "37.8");
}

TEST(Str, FmtGrouped) {
  EXPECT_EQ(fmtGrouped(0), "0");
  EXPECT_EQ(fmtGrouped(999), "999");
  EXPECT_EQ(fmtGrouped(1000), "1,000");
  EXPECT_EQ(fmtGrouped(1234567), "1,234,567");
}

TEST(Str, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

} // namespace
