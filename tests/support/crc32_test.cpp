//===- crc32_test.cpp - CRC-32 unit tests ----------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Crc32.h"

#include <gtest/gtest.h>

#include <string>

using namespace pose;

namespace {

uint32_t crcOf(const std::string &S) {
  return crc32(reinterpret_cast<const uint8_t *>(S.data()), S.size());
}

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 (IEEE) test vectors.
  EXPECT_EQ(crcOf(""), 0x00000000u);
  EXPECT_EQ(crcOf("123456789"), 0xCBF43926u);
  EXPECT_EQ(crcOf("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, OrderSensitive) {
  // The paper picks CRC over a plain checksum precisely because byte order
  // affects the result.
  EXPECT_NE(crcOf("ab"), crcOf("ba"));
  EXPECT_NE(crcOf("abc"), crcOf("cba"));
}

TEST(Crc32, StreamMatchesOneShot) {
  std::string S = "hello rtl world";
  Crc32Stream Stream;
  for (char C : S)
    Stream.update(static_cast<uint8_t>(C));
  EXPECT_EQ(Stream.value(), crcOf(S));
}

TEST(Crc32, StreamChunkedMatchesOneShot) {
  std::string S(1024, '\0');
  for (size_t I = 0; I < S.size(); ++I)
    S[I] = static_cast<char>(I * 31 + 7);
  Crc32Stream Stream;
  Stream.update(reinterpret_cast<const uint8_t *>(S.data()), 100);
  Stream.update(reinterpret_cast<const uint8_t *>(S.data()) + 100,
                S.size() - 100);
  EXPECT_EQ(Stream.value(), crcOf(S));
}

TEST(Crc32, VectorOverload) {
  std::vector<uint8_t> Bytes = {1, 2, 3, 4, 5};
  EXPECT_EQ(crc32(Bytes), crc32(Bytes.data(), Bytes.size()));
}

} // namespace
