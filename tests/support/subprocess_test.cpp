//===- subprocess_test.cpp - Sandboxed child process tests ----------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>

#include <poll.h>
#include <sys/resource.h>
#include <unistd.h>

using namespace pose;

namespace {

SubprocessResult runSh(const std::string &Script, uint64_t TimeoutMs = 0) {
  SubprocessSpec Spec;
  Spec.Argv = {"/bin/sh", "-c", Script};
  Spec.TimeoutMs = TimeoutMs;
  return runSubprocess(Spec);
}

TEST(Subprocess, CapturesStdoutAndExitCode) {
  SubprocessResult R = runSh("echo out; echo err 1>&2; exit 0");
  EXPECT_EQ(R.Kind, ExitKind::Exited);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Stdout, "out\n");
  EXPECT_EQ(R.Stderr, "err\n");
}

TEST(Subprocess, NonzeroExitIsExitedNotError) {
  SubprocessResult R = runSh("exit 42");
  EXPECT_EQ(R.Kind, ExitKind::Exited);
  EXPECT_EQ(R.ExitCode, 42);
  EXPECT_FALSE(R.ok());
}

TEST(Subprocess, DeathBySignalIsClassified) {
  SubprocessResult R = runSh("kill -SEGV $$");
  EXPECT_EQ(R.Kind, ExitKind::Signalled);
  EXPECT_EQ(R.Signal, SIGSEGV);
  EXPECT_FALSE(R.ok());
}

TEST(Subprocess, HangIsKilledByTheTimer) {
  const auto Start = std::chrono::steady_clock::now();
  SubprocessResult R = runSh("sleep 30", /*TimeoutMs=*/200);
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_EQ(R.Kind, ExitKind::TimedOut);
  EXPECT_EQ(R.Signal, SIGKILL);
  EXPECT_FALSE(R.ok());
  // The call returns promptly after the kill; it must not sit out the
  // child's full sleep waiting for a pipe EOF.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            10);
}

TEST(Subprocess, KilledWorkersChildrenDoNotStallTheDrain) {
  // The child forks its own children, all inheriting the pipe write
  // ends. The kill timer must take down the whole process group — an
  // orphan holding the pipes open would otherwise stall the caller for
  // the orphan's full lifetime.
  const auto Start = std::chrono::steady_clock::now();
  SubprocessResult R = runSh("sleep 30 & sleep 30", /*TimeoutMs=*/200);
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_EQ(R.Kind, ExitKind::TimedOut);
  EXPECT_EQ(R.Signal, SIGKILL);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            10);
}

TEST(Subprocess, SpawnFailureIsReportedNotConfusedWithExit) {
  SubprocessSpec Spec;
  Spec.Argv = {"/nonexistent/definitely-not-a-program"};
  SubprocessResult R = runSubprocess(Spec);
  EXPECT_EQ(R.Kind, ExitKind::SpawnFailed);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_FALSE(R.ok());
}

TEST(Subprocess, LargeOutputDoesNotDeadlock) {
  // More than a pipe buffer on both streams: the poll()-driven drain must
  // keep both flowing.
  SubprocessResult R = runSh("i=0; while [ $i -lt 3000 ]; do "
                             "echo 0123456789012345678901234567890123456789; "
                             "echo e0123456789012345678901234567890123456789 "
                             "1>&2; i=$((i+1)); done");
  EXPECT_EQ(R.Kind, ExitKind::Exited);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Stdout.size(), 3000u * 41u);
  EXPECT_EQ(R.Stderr.size(), 3000u * 42u);
}

SubprocessSpec shSpec(const std::string &Script, uint64_t TimeoutMs = 0) {
  SubprocessSpec Spec;
  Spec.Argv = {"/bin/sh", "-c", Script};
  Spec.TimeoutMs = TimeoutMs;
  return Spec;
}

/// Drains \p Pool until \p Count results arrived (failing the test on a
/// stuck pool rather than hanging it).
std::vector<std::pair<SubprocessPool::JobId, SubprocessResult>>
drainPool(SubprocessPool &Pool, size_t Count) {
  std::vector<std::pair<SubprocessPool::JobId, SubprocessResult>> All;
  while (All.size() < Count) {
    auto Done = Pool.wait(10'000);
    if (Done.empty()) {
      ADD_FAILURE() << "pool wait timed out with " << All.size() << "/"
                    << Count << " results";
      break;
    }
    for (auto &P : Done)
      All.push_back(std::move(P));
  }
  return All;
}

TEST(SubprocessPool, RunsChildrenConcurrently) {
  SubprocessPool Pool;
  const auto Start = std::chrono::steady_clock::now();
  Pool.spawn(shSpec("sleep 0.4; echo done"));
  Pool.spawn(shSpec("sleep 0.4; echo done"));
  EXPECT_EQ(Pool.live(), 2u);
  auto All = drainPool(Pool, 2);
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  ASSERT_EQ(All.size(), 2u);
  for (auto &P : All) {
    EXPECT_TRUE(P.second.ok()) << P.second.Error;
    EXPECT_EQ(P.second.Stdout, "done\n");
  }
  EXPECT_EQ(Pool.live(), 0u);
  EXPECT_TRUE(Pool.idle());
  // Two sequential 0.4s sleeps would need at least 0.8s; concurrent ones
  // fit comfortably under that.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                .count(),
            700);
}

TEST(SubprocessPool, FastChildIsDeliveredBeforeSlowSibling) {
  SubprocessPool Pool;
  Pool.spawn(shSpec("sleep 0.6"));
  const SubprocessPool::JobId Fast = Pool.spawn(shSpec("echo hi"));
  auto First = Pool.wait(10'000);
  ASSERT_FALSE(First.empty());
  bool SawFast = false;
  for (auto &P : First)
    SawFast |= P.first == Fast;
  EXPECT_TRUE(SawFast) << "fast child not in the first completion batch";
  drainPool(Pool, 2 - First.size());
}

TEST(SubprocessPool, MixedOutcomesAreClassifiedIndependently) {
  SubprocessPool Pool;
  const SubprocessPool::JobId Ok = Pool.spawn(shSpec("echo fine"));
  const SubprocessPool::JobId Sig = Pool.spawn(shSpec("kill -SEGV $$"));
  const SubprocessPool::JobId Hung =
      Pool.spawn(shSpec("sleep 30", /*TimeoutMs=*/300));
  SubprocessSpec Bad;
  Bad.Argv = {"/nonexistent/definitely-not-a-program"};
  const SubprocessPool::JobId Spawn = Pool.spawn(Bad);
  EXPECT_EQ(Pool.live(), 3u); // The failed spawn never became a child.

  auto All = drainPool(Pool, 4);
  ASSERT_EQ(All.size(), 4u);
  for (auto &P : All) {
    const SubprocessResult &R = P.second;
    if (P.first == Ok) {
      EXPECT_EQ(R.Kind, ExitKind::Exited);
      EXPECT_EQ(R.Stdout, "fine\n");
    } else if (P.first == Sig) {
      EXPECT_EQ(R.Kind, ExitKind::Signalled);
      EXPECT_EQ(R.Signal, SIGSEGV);
    } else if (P.first == Hung) {
      EXPECT_EQ(R.Kind, ExitKind::TimedOut);
      EXPECT_EQ(R.Signal, SIGKILL);
    } else if (P.first == Spawn) {
      EXPECT_EQ(R.Kind, ExitKind::SpawnFailed);
      EXPECT_FALSE(R.Error.empty());
    } else {
      ADD_FAILURE() << "unknown job id";
    }
  }
}

TEST(SubprocessPool, WaitTimesOutEmptyWithoutDroppingChildren) {
  SubprocessPool Pool;
  Pool.spawn(shSpec("sleep 0.4; echo late"));
  auto Early = Pool.wait(30);
  EXPECT_TRUE(Early.empty());
  EXPECT_EQ(Pool.live(), 1u);
  auto All = drainPool(Pool, 1);
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0].second.Stdout, "late\n");
}

TEST(SubprocessPool, DestructorKillsLiveChildren) {
  const auto Start = std::chrono::steady_clock::now();
  {
    SubprocessPool Pool;
    Pool.spawn(shSpec("sleep 30"));
    Pool.spawn(shSpec("sleep 30"));
  }
  // The destructor SIGKILLs and reaps; it must not sit out the sleeps.
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            10);
}

TEST(Subprocess, ExitKindNamesAreStable) {
  EXPECT_STREQ(exitKindName(ExitKind::Exited), "exited");
  EXPECT_STREQ(exitKindName(ExitKind::Signalled), "signalled");
  EXPECT_STREQ(exitKindName(ExitKind::TimedOut), "timed-out");
  EXPECT_STREQ(exitKindName(ExitKind::SpawnFailed), "spawn-failed");
  EXPECT_STREQ(exitKindName(ExitKind::PollFailed), "poll-failed");
}

TEST(SubprocessPool, PollFailureIsItsOwnFailureClassNotATimeout) {
  SubprocessPool Pool;
  Pool.spawn(shSpec("sleep 30"));
  Pool.spawn(shSpec("sleep 30"));

  // Four pipe fds are in the poll set; dropping RLIMIT_NOFILE below that
  // makes poll() itself fail with EINVAL. Before the fix this surfaced as
  // a bogus per-child TimedOut; it must be the distinct PollFailed class
  // carrying the errno text.
  struct rlimit Old;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &Old), 0);
  struct rlimit Tiny = Old;
  Tiny.rlim_cur = 3;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &Tiny), 0);
  auto All = Pool.wait(5'000);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &Old), 0);

  ASSERT_EQ(All.size(), 2u);
  for (auto &P : All) {
    EXPECT_EQ(P.second.Kind, ExitKind::PollFailed);
    EXPECT_NE(P.second.Error.find("poll"), std::string::npos)
        << P.second.Error;
    EXPECT_FALSE(P.second.Error.empty());
  }
  // Every child was killed and reaped on the way out.
  EXPECT_EQ(Pool.live(), 0u);
  EXPECT_TRUE(Pool.idle());
}

TEST(SubprocessPool, KillTerminatesARunningJobPromptly) {
  SubprocessPool Pool;
  const SubprocessPool::JobId Id = Pool.spawn(shSpec("sleep 30"));
  EXPECT_FALSE(Pool.kill(Id + 999)); // Unknown id.

  const auto Start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Pool.kill(Id));
  auto All = drainPool(Pool, 1);
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            10);

  // The killed job still funnels through wait(), as a kill-classified
  // result the caller can drop.
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0].first, Id);
  EXPECT_EQ(All[0].second.Kind, ExitKind::TimedOut);
  EXPECT_EQ(All[0].second.Signal, SIGKILL);
  EXPECT_FALSE(Pool.kill(Id)); // Already completed.
}

TEST(SubprocessPool, ExternalFdReadinessWakesWaitWithNoChildren) {
  SubprocessPool Pool;
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  ASSERT_EQ(::write(Fds[1], "x", 1), 1);

  std::vector<ExternalFd> Ext(1);
  Ext[0].Fd = Fds[0];
  Ext[0].Events = POLLIN;
  const auto Start = std::chrono::steady_clock::now();
  auto Out = Pool.wait(10'000, &Ext);
  const auto Elapsed = std::chrono::steady_clock::now() - Start;

  // Woken by the external fd, long before the timeout, with no children
  // at all — the pool can serve as a server's sole blocking point.
  EXPECT_TRUE(Out.empty());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            5);
  EXPECT_NE(Ext[0].Revents & POLLIN, 0);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(SubprocessPool, QuietExternalFdTimesOutWithReventsClear) {
  SubprocessPool Pool;
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  std::vector<ExternalFd> Ext(1);
  Ext[0].Fd = Fds[0];
  Ext[0].Events = POLLIN;
  Ext[0].Revents = POLLIN; // Stale value; wait() must clear it.
  auto Out = Pool.wait(60, &Ext);
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(Ext[0].Revents, 0);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(SubprocessPool, ChildCompletionsStillFlowWhileWatchingExternalFds) {
  SubprocessPool Pool;
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0); // Never written: stays quiet.
  const SubprocessPool::JobId Id = Pool.spawn(shSpec("echo via-ext"));
  std::vector<ExternalFd> Ext(1);
  Ext[0].Fd = Fds[0];
  Ext[0].Events = POLLIN;

  std::vector<std::pair<SubprocessPool::JobId, SubprocessResult>> All;
  for (int Round = 0; Round != 200 && All.empty(); ++Round) {
    auto Out = Pool.wait(100, &Ext);
    All.insert(All.end(), Out.begin(), Out.end());
  }
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0].first, Id);
  EXPECT_EQ(All[0].second.Stdout, "via-ext\n");
  EXPECT_EQ(Ext[0].Revents, 0);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

} // namespace
