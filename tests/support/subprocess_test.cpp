//===- subprocess_test.cpp - Sandboxed child process tests ----------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/support/Subprocess.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>

using namespace pose;

namespace {

SubprocessResult runSh(const std::string &Script, uint64_t TimeoutMs = 0) {
  SubprocessSpec Spec;
  Spec.Argv = {"/bin/sh", "-c", Script};
  Spec.TimeoutMs = TimeoutMs;
  return runSubprocess(Spec);
}

TEST(Subprocess, CapturesStdoutAndExitCode) {
  SubprocessResult R = runSh("echo out; echo err 1>&2; exit 0");
  EXPECT_EQ(R.Kind, ExitKind::Exited);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Stdout, "out\n");
  EXPECT_EQ(R.Stderr, "err\n");
}

TEST(Subprocess, NonzeroExitIsExitedNotError) {
  SubprocessResult R = runSh("exit 42");
  EXPECT_EQ(R.Kind, ExitKind::Exited);
  EXPECT_EQ(R.ExitCode, 42);
  EXPECT_FALSE(R.ok());
}

TEST(Subprocess, DeathBySignalIsClassified) {
  SubprocessResult R = runSh("kill -SEGV $$");
  EXPECT_EQ(R.Kind, ExitKind::Signalled);
  EXPECT_EQ(R.Signal, SIGSEGV);
  EXPECT_FALSE(R.ok());
}

TEST(Subprocess, HangIsKilledByTheTimer) {
  const auto Start = std::chrono::steady_clock::now();
  SubprocessResult R = runSh("sleep 30", /*TimeoutMs=*/200);
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_EQ(R.Kind, ExitKind::TimedOut);
  EXPECT_EQ(R.Signal, SIGKILL);
  EXPECT_FALSE(R.ok());
  // The call returns promptly after the kill; it must not sit out the
  // child's full sleep waiting for a pipe EOF.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            10);
}

TEST(Subprocess, KilledWorkersChildrenDoNotStallTheDrain) {
  // The child forks its own children, all inheriting the pipe write
  // ends. The kill timer must take down the whole process group — an
  // orphan holding the pipes open would otherwise stall the caller for
  // the orphan's full lifetime.
  const auto Start = std::chrono::steady_clock::now();
  SubprocessResult R = runSh("sleep 30 & sleep 30", /*TimeoutMs=*/200);
  const auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_EQ(R.Kind, ExitKind::TimedOut);
  EXPECT_EQ(R.Signal, SIGKILL);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            10);
}

TEST(Subprocess, SpawnFailureIsReportedNotConfusedWithExit) {
  SubprocessSpec Spec;
  Spec.Argv = {"/nonexistent/definitely-not-a-program"};
  SubprocessResult R = runSubprocess(Spec);
  EXPECT_EQ(R.Kind, ExitKind::SpawnFailed);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_FALSE(R.ok());
}

TEST(Subprocess, LargeOutputDoesNotDeadlock) {
  // More than a pipe buffer on both streams: the poll()-driven drain must
  // keep both flowing.
  SubprocessResult R = runSh("i=0; while [ $i -lt 3000 ]; do "
                             "echo 0123456789012345678901234567890123456789; "
                             "echo e0123456789012345678901234567890123456789 "
                             "1>&2; i=$((i+1)); done");
  EXPECT_EQ(R.Kind, ExitKind::Exited);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Stdout.size(), 3000u * 41u);
  EXPECT_EQ(R.Stderr.size(), 3000u * 42u);
}

TEST(Subprocess, ExitKindNamesAreStable) {
  EXPECT_STREQ(exitKindName(ExitKind::Exited), "exited");
  EXPECT_STREQ(exitKindName(ExitKind::Signalled), "signalled");
  EXPECT_STREQ(exitKindName(ExitKind::TimedOut), "timed-out");
  EXPECT_STREQ(exitKindName(ExitKind::SpawnFailed), "spawn-failed");
}

} // namespace
