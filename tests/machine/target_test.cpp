//===- target_test.cpp - Machine model tests -----------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/machine/Target.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

TEST(Target, ImmediateRanges) {
  EXPECT_TRUE(target::fitsImmediate(0));
  EXPECT_TRUE(target::fitsImmediate(4095));
  EXPECT_TRUE(target::fitsImmediate(-4095));
  EXPECT_FALSE(target::fitsImmediate(4096));
  EXPECT_FALSE(target::fitsImmediate(-4096));
}

TEST(Target, AluImmediates) {
  Rtl I = rtl::binary(Op::Add, Operand::reg(1), Operand::reg(2),
                      Operand::imm(100));
  EXPECT_TRUE(target::isLegal(I));
  I.Src[1] = Operand::imm(100000);
  EXPECT_FALSE(target::isLegal(I));
  // Immediate in the first operand slot is not encodable.
  I = rtl::binary(Op::Sub, Operand::reg(1), Operand::imm(5),
                  Operand::reg(2));
  EXPECT_FALSE(target::isLegal(I));
}

TEST(Target, MultiplyHasNoImmediateForm) {
  Rtl I = rtl::binary(Op::Mul, Operand::reg(1), Operand::reg(2),
                      Operand::imm(3));
  EXPECT_FALSE(target::isLegal(I));
  I.Src[1] = Operand::reg(3);
  EXPECT_TRUE(target::isLegal(I));
  EXPECT_FALSE(target::isLegal(rtl::binary(Op::Div, Operand::reg(1),
                                           Operand::reg(2),
                                           Operand::imm(2))));
}

TEST(Target, ShiftImmediates) {
  EXPECT_TRUE(target::isLegal(rtl::binary(Op::Shl, Operand::reg(1),
                                          Operand::reg(2),
                                          Operand::imm(31))));
  EXPECT_FALSE(target::isLegal(rtl::binary(Op::Shl, Operand::reg(1),
                                           Operand::reg(2),
                                           Operand::imm(32))));
  EXPECT_FALSE(target::isLegal(rtl::binary(Op::Shr, Operand::reg(1),
                                           Operand::reg(2),
                                           Operand::imm(-1))));
}

TEST(Target, MovMaterializesAnyConstant) {
  EXPECT_TRUE(target::isLegal(
      rtl::mov(Operand::reg(1), Operand::imm(0x7FFFFFFF))));
}

TEST(Target, MemoryOffsets) {
  EXPECT_TRUE(
      target::isLegal(rtl::load(Operand::reg(1), Operand::reg(2), 4095)));
  EXPECT_FALSE(
      target::isLegal(rtl::load(Operand::reg(1), Operand::reg(2), 4096)));
  Rtl St = rtl::store(Operand::reg(2), 0, Operand::reg(3));
  EXPECT_TRUE(target::isLegal(St));
  St.Src[2] = Operand::imm(1);
  EXPECT_FALSE(target::isLegal(St)); // No store-immediate form.
}

TEST(Target, CmpImmediates) {
  EXPECT_TRUE(target::isLegal(rtl::cmp(Operand::reg(1), Operand::imm(0))));
  EXPECT_FALSE(
      target::isLegal(rtl::cmp(Operand::reg(1), Operand::imm(99999))));
  EXPECT_FALSE(target::isLegal(rtl::cmp(Operand::imm(0), Operand::reg(1))));
}

} // namespace
