//===- regassign_test.cpp - Register assignment tests --------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/machine/RegisterAssign.h"

#include "src/machine/Target.h"
#include "src/sim/Interpreter.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

/// Returns true if no pseudo register remains anywhere in \p F.
bool allHardware(const Function &F) {
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts) {
      if (I.Dst.isReg() && !isHardwareReg(I.Dst.getReg()))
        return false;
      bool Bad = false;
      I.forEachUsedReg([&Bad](RegNum R) { Bad |= !isHardwareReg(R); });
      if (Bad)
        return false;
    }
  return true;
}

TEST(RegisterAssign, MapsAllPseudosToHardware) {
  Module M = compileOrDie(
      "int f(int a, int b) { return a * b + a - b; }");
  Function &F = functionNamed(M, "f");
  assignRegisters(F);
  EXPECT_TRUE(F.State.RegsAssigned);
  EXPECT_TRUE(allHardware(F)) << printFunction(F);
  expectVerifies(F);
}

TEST(RegisterAssign, Idempotent) {
  Module M = compileOrDie("int f(int a) { return a + 1; }");
  Function &F = functionNamed(M, "f");
  assignRegisters(F);
  Function Snapshot = F;
  assignRegisters(F);
  EXPECT_EQ(F.instructionCount(), Snapshot.instructionCount());
}

TEST(RegisterAssign, PreservesSemantics) {
  const char *Src =
      "int f(int a, int b, int c) {\n"
      "  int x = a * b; int y = b * c; int z = a * c;\n"
      "  return x + y * z - (x ^ y) + (z & a);\n"
      "}";
  Module M = compileOrDie(Src);
  Interpreter I(M);
  RunResult Before = I.run("f", {3, 5, 7});
  ASSERT_TRUE(Before.Ok) << Before.Error;

  Function &F = functionNamed(M, "f");
  assignRegisters(F);
  RunResult After = I.run("f", {3, 5, 7});
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(Before.ReturnValue, After.ReturnValue);
}

TEST(RegisterAssign, HighPressureSpills) {
  // Build a function with more simultaneously-live values than registers:
  // sum of 20 products all live until the end.
  std::string Src = "int f(int a) {\n";
  for (int I = 0; I < 20; ++I)
    Src += "  int v" + std::to_string(I) + " = a * " +
           std::to_string(I + 2) + ";\n";
  // One expression using them all, then using them again in reverse so
  // every value stays live across the whole computation.
  Src += "  int s = 0;\n";
  for (int I = 0; I < 20; ++I)
    Src += "  s = s + v" + std::to_string(I) + ";\n";
  for (int I = 19; I >= 0; --I)
    Src += "  s = s * 2 + v" + std::to_string(I) + ";\n";
  Src += "  return s;\n}\n";

  Module M = compileOrDie(Src);
  Interpreter I(M);
  RunResult Before = I.run("f", {3});
  ASSERT_TRUE(Before.Ok) << Before.Error;

  Function &F = functionNamed(M, "f");
  assignRegisters(F);
  EXPECT_TRUE(allHardware(F));
  expectVerifies(F);
  RunResult After = I.run("f", {3});
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(Before.ReturnValue, After.ReturnValue);
}

TEST(RegisterAssign, UsesOnlyAllocatableRegisters) {
  Module M = compileOrDie("int f(int a,int b){return (a+b)*(a-b);}");
  Function &F = functionNamed(M, "f");
  assignRegisters(F);
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts) {
      if (I.Dst.isReg()) {
        EXPECT_LT(I.Dst.getReg(), target::NumAllocatableRegs);
      }
      I.forEachUsedReg(
          [](RegNum R) { EXPECT_LT(R, target::NumAllocatableRegs); });
    }
}

TEST(RegisterAssign, DeterministicAcrossRuns) {
  Module M1 = compileOrDie("int f(int a,int b){return a*b+(a^b);}");
  Module M2 = compileOrDie("int f(int a,int b){return a*b+(a^b);}");
  Function &F1 = functionNamed(M1, "f");
  Function &F2 = functionNamed(M2, "f");
  assignRegisters(F1);
  assignRegisters(F2);
  EXPECT_EQ(printFunction(F1), printFunction(F2));
}

} // namespace
