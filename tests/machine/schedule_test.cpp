//===- schedule_test.cpp - Final instruction scheduler tests --------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/machine/Schedule.h"

#include "src/core/Compilers.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

TEST(Schedule, HidesLoadUseDelay) {
  // Two independent load+add chains interleaved pessimally: the scheduler
  // must separate each load from its consumer.
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo(), S1 = F.makePseudo(),
         S2 = F.makePseudo(), T = F.makePseudo();
  StackSlot X;
  X.Name = "x";
  StackSlot Y;
  Y.Name = "y";
  F.addSlot(X);
  F.addSlot(Y);
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::load(Operand::reg(A), Operand::slot(0), 0));
  I.push_back(rtl::binary(Op::Add, Operand::reg(S1), Operand::reg(A),
                          Operand::imm(1))); // Stalls on A.
  I.push_back(rtl::load(Operand::reg(B), Operand::slot(1), 0));
  I.push_back(rtl::binary(Op::Add, Operand::reg(S2), Operand::reg(B),
                          Operand::imm(2))); // Stalls on B.
  I.push_back(rtl::binary(Op::Add, Operand::reg(T), Operand::reg(S1),
                          Operand::reg(S2)));
  I.push_back(rtl::ret(Operand::reg(T)));

  Module M;
  Global G;
  G.Name = "f";
  G.Kind = GlobalKind::Func;
  G.FuncIndex = 0;
  G.ReturnsValue = true;
  M.Globals.push_back(G);
  F.Name = "f";
  F.ReturnsValue = true;
  M.Functions.push_back(F);

  Interpreter Sim(M);
  RunResult Before = Sim.run("f", {});
  ASSERT_TRUE(Before.Ok);
  EXPECT_EQ(Before.LoadUseStalls, 2u);

  Function Scheduled = F;
  EXPECT_TRUE(scheduleFunction(Scheduled));
  expectVerifies(Scheduled);
  Sim.overrideFunction("f", &Scheduled);
  RunResult After = Sim.run("f", {});
  ASSERT_TRUE(After.Ok);
  EXPECT_TRUE(Before.sameBehavior(After));
  EXPECT_EQ(After.DynamicInsts, Before.DynamicInsts); // Same count…
  EXPECT_EQ(After.LoadUseStalls, 0u);                 // …fewer stalls.
}

TEST(Schedule, NoOpOnDependentChain) {
  // A strict dependence chain cannot be improved; order must not change.
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(1)));
  I.push_back(rtl::binary(Op::Add, Operand::reg(B), Operand::reg(A),
                          Operand::imm(2)));
  I.push_back(rtl::binary(Op::Mul, Operand::reg(B), Operand::reg(B),
                          Operand::reg(A)));
  I.push_back(rtl::ret(Operand::reg(B)));
  EXPECT_FALSE(scheduleFunction(F));
}

TEST(Schedule, WholeSuiteStallsNeverIncreaseAndBehaviorHolds) {
  PhaseManager PM;
  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    for (Function &F : M.Functions)
      batchCompile(PM, F);
    Interpreter Sim(M);
    RunResult Before = Sim.run("main", {});
    ASSERT_TRUE(Before.Ok) << W.Name;
    for (Function &F : M.Functions) {
      scheduleFunction(F);
      expectVerifies(F);
    }
    RunResult After = Sim.run("main", {});
    ASSERT_TRUE(After.Ok) << W.Name;
    EXPECT_TRUE(Before.sameBehavior(After)) << W.Name;
    EXPECT_EQ(After.DynamicInsts, Before.DynamicInsts) << W.Name;
    EXPECT_LE(After.LoadUseStalls, Before.LoadUseStalls) << W.Name;
  }
}

TEST(Schedule, FinalizeAddsActivationRecordCode) {
  Module M = compileOrDie("int f(int a) { return a * 3; }");
  Function &F = functionNamed(M, "f");
  size_t Before = F.instructionCount();
  finalizeFunction(F);
  EXPECT_GT(F.instructionCount(), Before);
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Prologue);
}

} // namespace
