//===- function_test.cpp - Function/CFG unit tests --------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Function.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

/// Builds the diamond CFG used by several tests:
///   B0: cmp; branch Eq -> B2
///   B1: mov; jump -> B3
///   B2: mov (falls through)
///   B3: ret
Function makeDiamond() {
  Function F;
  F.Name = "diamond";
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  RegNum R = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(rtl::mov(Operand::reg(R), Operand::imm(1)));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B3].Label));
  F.Blocks[B2].Insts.push_back(rtl::mov(Operand::reg(R), Operand::imm(2)));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::reg(R)));
  return F;
}

TEST(Function, CountersAndSlots) {
  Function F;
  RegNum R1 = F.makePseudo();
  RegNum R2 = F.makePseudo();
  EXPECT_EQ(R1, FirstPseudoReg);
  EXPECT_EQ(R2, FirstPseudoReg + 1);
  EXPECT_EQ(F.pseudoLimit(), FirstPseudoReg + 2);

  StackSlot S;
  S.Name = "x";
  EXPECT_EQ(F.addSlot(S), 0);
  S.Name = "y";
  EXPECT_EQ(F.addSlot(S), 1);
  EXPECT_EQ(F.Slots.size(), 2u);
}

TEST(Function, FindBlockAndInstructionCount) {
  Function F = makeDiamond();
  EXPECT_EQ(F.instructionCount(), 6u);
  EXPECT_EQ(F.findBlock(F.Blocks[2].Label), 2);
  EXPECT_EQ(F.findBlock(9999), -1);
}

TEST(Function, CfgDiamond) {
  Function F = makeDiamond();
  Cfg C = Cfg::build(F);
  ASSERT_EQ(C.Succs.size(), 4u);
  // B0: branch to B2 plus fall-through to B1.
  EXPECT_EQ(C.Succs[0], (std::vector<int>{2, 1}));
  EXPECT_EQ(C.Succs[1], (std::vector<int>{3}));
  EXPECT_EQ(C.Succs[2], (std::vector<int>{3}));
  EXPECT_TRUE(C.Succs[3].empty());
  EXPECT_TRUE(C.Preds[0].empty());
  EXPECT_EQ(C.Preds[3].size(), 2u);
}

TEST(Function, CfgBranchToNextBlockHasOneEdge) {
  // A branch that targets the fall-through block must not produce a
  // duplicate successor edge.
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock();
  RegNum R = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B1].Label));
  F.Blocks[B1].Insts.push_back(rtl::ret(Operand::none()));
  Cfg C = Cfg::build(F);
  EXPECT_EQ(C.Succs[0], (std::vector<int>{1}));
  EXPECT_EQ(C.Preds[1], (std::vector<int>{0}));
}

TEST(Function, RecomputeCounters) {
  Function F;
  F.Blocks.emplace_back(12);
  F.Blocks.back().Insts.push_back(
      rtl::mov(Operand::reg(77), Operand::imm(0)));
  F.Blocks.back().Insts.push_back(rtl::ret(Operand::reg(77)));
  F.recomputeCounters();
  EXPECT_EQ(F.pseudoLimit(), 78u);
  EXPECT_EQ(F.makeLabel(), 13);
  EXPECT_EQ(F.makePseudo(), 78u);
}

TEST(Function, ModuleLookup) {
  Module M;
  Global GV;
  GV.Name = "data";
  GV.Kind = GlobalKind::Var;
  M.Globals.push_back(GV);
  Global GF;
  GF.Name = "f";
  GF.Kind = GlobalKind::Func;
  GF.FuncIndex = 0;
  M.Globals.push_back(GF);
  M.Functions.emplace_back();
  M.Functions[0].Name = "f";

  EXPECT_EQ(M.findGlobal("data"), 0);
  EXPECT_EQ(M.findGlobal("f"), 1);
  EXPECT_EQ(M.findGlobal("missing"), -1);
  EXPECT_EQ(M.functionFor(0), nullptr); // Var, not function.
  ASSERT_NE(M.functionFor(1), nullptr);
  EXPECT_EQ(M.functionFor(1)->Name, "f");
  EXPECT_EQ(M.functionFor(-1), nullptr);
}

TEST(Function, FallsThrough) {
  Function F = makeDiamond();
  EXPECT_TRUE(Cfg::fallsThrough(F.Blocks[0]));  // Branch falls through.
  EXPECT_FALSE(Cfg::fallsThrough(F.Blocks[1])); // Jump does not.
  EXPECT_TRUE(Cfg::fallsThrough(F.Blocks[2]));  // No terminator.
  EXPECT_FALSE(Cfg::fallsThrough(F.Blocks[3])); // Ret does not.
}

} // namespace
