//===- verify_test.cpp - IR verifier unit tests -----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Verify.h"

#include "src/ir/Function.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

Function makeMinimal() {
  Function F;
  F.Name = "f";
  F.addBlock();
  F.Blocks[0].Insts.push_back(rtl::ret(Operand::imm(0)));
  return F;
}

TEST(Verify, MinimalFunctionPasses) {
  EXPECT_EQ(verifyFunction(makeMinimal()), "");
}

TEST(Verify, EmptyFunctionFails) {
  Function F;
  F.Name = "f";
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verify, FallOffEndFails) {
  Function F;
  F.Name = "f";
  F.addBlock();
  F.Blocks[0].Insts.push_back(
      rtl::mov(Operand::reg(F.makePseudo()), Operand::imm(1)));
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verify, ControlInMiddleFails) {
  Function F = makeMinimal();
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(),
                           rtl::jump(F.Blocks[0].Label));
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(),
                           rtl::mov(Operand::reg(32), Operand::imm(0)));
  // Layout: mov; jump; ret  -> jump is not last.
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verify, BranchToUnknownLabelFails) {
  Function F = makeMinimal();
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(),
                           rtl::cmp(Operand::reg(32), Operand::imm(0)));
  F.Blocks.insert(F.Blocks.begin(), BasicBlock(55));
  F.Blocks[0].Insts.push_back(rtl::branch(Cond::Eq, 9999));
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verify, BranchWithoutConditionFails) {
  Function F = makeMinimal();
  Rtl B = rtl::branch(Cond::Eq, F.Blocks[0].Label);
  B.CC = Cond::None;
  F.Blocks.insert(F.Blocks.begin(), BasicBlock(77));
  F.Blocks[0].Insts.push_back(B);
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verify, SlotOutOfRangeFails) {
  Function F = makeMinimal();
  F.Blocks[0].Insts.insert(
      F.Blocks[0].Insts.begin(),
      rtl::lea(Operand::reg(F.makePseudo()), Operand::slot(3)));
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verify, StoreOfImmediateFails) {
  // The IR requires stores to write register values (no store-imm form).
  Function F = makeMinimal();
  Rtl Bad = rtl::store(Operand::reg(32), 0, Operand::reg(33));
  Bad.Src[2] = Operand::imm(7);
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(), Bad);
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verify, DestinationMustBeRegister) {
  Function F = makeMinimal();
  Rtl Bad = rtl::mov(Operand::reg(32), Operand::imm(1));
  Bad.Dst = Operand::imm(3);
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(), Bad);
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verify, ModuleCallArityChecked) {
  Module M;
  Global GF;
  GF.Name = "callee";
  GF.Kind = GlobalKind::Func;
  GF.FuncIndex = 0;
  GF.NumParams = 2;
  M.Globals.push_back(GF);
  M.Functions.push_back(makeMinimal());

  Global GMain;
  GMain.Name = "main";
  GMain.Kind = GlobalKind::Func;
  GMain.FuncIndex = 1;
  M.Globals.push_back(GMain);
  Function Main = makeMinimal();
  Main.Name = "main";
  Main.Blocks[0].Insts.insert(
      Main.Blocks[0].Insts.begin(),
      rtl::call(Operand::none(), 0, {Operand::imm(1)})); // One arg, not 2.
  M.Functions.push_back(Main);

  EXPECT_NE(verifyModule(M), "");
  M.Functions[1].Blocks[0].Insts[0].Args.push_back(Operand::imm(2));
  EXPECT_EQ(verifyModule(M), "");
}

TEST(Verify, CallToDataGlobalFails) {
  Module M;
  Global GV;
  GV.Name = "data";
  GV.Kind = GlobalKind::Var;
  M.Globals.push_back(GV);
  Global GMain;
  GMain.Name = "main";
  GMain.Kind = GlobalKind::Func;
  GMain.FuncIndex = 0;
  M.Globals.push_back(GMain);
  Function Main = makeMinimal();
  Main.Blocks[0].Insts.insert(Main.Blocks[0].Insts.begin(),
                              rtl::call(Operand::none(), 0, {}));
  M.Functions.push_back(Main);
  EXPECT_NE(verifyModule(M), "");
}

} // namespace
