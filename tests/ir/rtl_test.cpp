//===- rtl_test.cpp - RTL instruction unit tests ----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Rtl.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

TEST(Rtl, OperandFactories) {
  EXPECT_TRUE(Operand::none().isNone());
  EXPECT_TRUE(Operand::reg(33).isReg());
  EXPECT_EQ(Operand::reg(33).getReg(), 33u);
  EXPECT_TRUE(Operand::imm(-5).isImm());
  EXPECT_EQ(Operand::imm(-5).Value, -5);
  EXPECT_TRUE(Operand::slot(2).isSlot());
  EXPECT_TRUE(Operand::global(1).isGlobal());
  EXPECT_TRUE(Operand::label(7).isLabel());
}

TEST(Rtl, RegisterClasses) {
  EXPECT_TRUE(isHardwareReg(0));
  EXPECT_TRUE(isHardwareReg(FirstPseudoReg - 1));
  EXPECT_FALSE(isHardwareReg(FirstPseudoReg));
  EXPECT_FALSE(isHardwareReg(1000));
}

TEST(Rtl, Classification) {
  Rtl Add = rtl::binary(Op::Add, Operand::reg(32), Operand::reg(33),
                        Operand::imm(1));
  EXPECT_TRUE(Add.isBinary());
  EXPECT_FALSE(Add.isControl());
  EXPECT_TRUE(Add.definesReg());
  EXPECT_FALSE(Add.hasSideEffects());

  Rtl Br = rtl::branch(Cond::Lt, 3);
  EXPECT_TRUE(Br.isControl());
  EXPECT_TRUE(Br.usesIC());
  EXPECT_FALSE(Br.definesReg());

  Rtl Cmp = rtl::cmp(Operand::reg(32), Operand::imm(0));
  EXPECT_TRUE(Cmp.definesIC());
  EXPECT_FALSE(Cmp.usesIC());

  Rtl St = rtl::store(Operand::reg(32), 0, Operand::reg(33));
  EXPECT_TRUE(St.hasSideEffects());
  EXPECT_FALSE(St.definesReg());

  Rtl Ld = rtl::load(Operand::reg(34), Operand::slot(0), 0);
  EXPECT_TRUE(Ld.readsMemory());
  EXPECT_FALSE(Ld.hasSideEffects());
}

TEST(Rtl, ForEachUsedReg) {
  Rtl C = rtl::call(Operand::reg(40), 1,
                    {Operand::reg(35), Operand::imm(3), Operand::reg(36)});
  std::vector<RegNum> Used;
  C.forEachUsedReg([&Used](RegNum R) { Used.push_back(R); });
  EXPECT_EQ(Used, (std::vector<RegNum>{35, 36}));
}

TEST(Rtl, Equality) {
  Rtl A = rtl::binary(Op::Add, Operand::reg(32), Operand::reg(33),
                      Operand::imm(1));
  Rtl B = A;
  EXPECT_EQ(A, B);
  B.Src[1] = Operand::imm(2);
  EXPECT_NE(A, B);
}

TEST(Rtl, InvertCondRoundTrips) {
  for (Cond C : {Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge,
                 Cond::ULt, Cond::ULe, Cond::UGt, Cond::UGe}) {
    EXPECT_NE(invertCond(C), C);
    EXPECT_EQ(invertCond(invertCond(C)), C);
  }
}

TEST(Rtl, OpNamesDistinct) {
  EXPECT_STREQ(opName(Op::Add), "add");
  EXPECT_STRNE(opName(Op::Shr), opName(Op::Ushr));
}

} // namespace
