//===- printer_test.cpp - RTL printer unit tests ----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Printer.h"

#include "src/ir/Function.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

TEST(Printer, BasicInstructions) {
  EXPECT_EQ(printRtl(rtl::mov(Operand::reg(32), Operand::imm(1))),
            "r[32]=1;");
  EXPECT_EQ(printRtl(rtl::binary(Op::Add, Operand::reg(3), Operand::reg(4),
                                 Operand::reg(5))),
            "r[3]=r[4]+r[5];");
  EXPECT_EQ(printRtl(rtl::load(Operand::reg(8), Operand::reg(1), 0)),
            "r[8]=M[r[1]];");
  EXPECT_EQ(printRtl(rtl::load(Operand::reg(8), Operand::reg(1), 4)),
            "r[8]=M[r[1]+4];");
  EXPECT_EQ(printRtl(rtl::store(Operand::reg(1), 0, Operand::reg(2))),
            "M[r[1]]=r[2];");
  EXPECT_EQ(printRtl(rtl::cmp(Operand::reg(1), Operand::reg(9))),
            "IC=r[1]?r[9];");
  EXPECT_EQ(printRtl(rtl::branch(Cond::Lt, 3)), "PC=IC<0,L3;");
  EXPECT_EQ(printRtl(rtl::jump(5)), "PC=L5;");
  EXPECT_EQ(printRtl(rtl::ret(Operand::reg(2))), "ret r[2];");
  EXPECT_EQ(printRtl(rtl::ret(Operand::none())), "ret;");
  EXPECT_EQ(printRtl(rtl::lea(Operand::reg(32), Operand::slot(1))),
            "r[32]=&S1;");
  EXPECT_EQ(printRtl(rtl::call(Operand::reg(32), 4,
                               {Operand::reg(33), Operand::imm(2)})),
            "r[32]=call @4(r[33],2);");
}

TEST(Printer, ShiftsDistinguished) {
  Rtl A = rtl::binary(Op::Shr, Operand::reg(1), Operand::reg(2),
                      Operand::imm(3));
  Rtl L = rtl::binary(Op::Ushr, Operand::reg(1), Operand::reg(2),
                      Operand::imm(3));
  EXPECT_NE(printRtl(A), printRtl(L));
}

TEST(Printer, FunctionSkeleton) {
  Function F;
  F.Name = "f";
  StackSlot S;
  S.Name = "x";
  F.addSlot(S);
  F.addBlock();
  F.Blocks[0].Insts.push_back(rtl::ret(Operand::imm(0)));
  std::string Text = printFunction(F);
  EXPECT_NE(Text.find("function f()"), std::string::npos);
  EXPECT_NE(Text.find("x:1"), std::string::npos);
  EXPECT_NE(Text.find("L0:"), std::string::npos);
  EXPECT_NE(Text.find("ret 0;"), std::string::npos);
}

} // namespace
