//===- parse_test.cpp - Textual RTL parser tests ------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/ir/Parse.h"

#include "src/core/Canonical.h"
#include "src/core/Compilers.h"
#include "src/ir/Printer.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

Function parseOk(const std::string &Text) {
  Function F;
  std::string Err = parseFunction(Text, F);
  EXPECT_EQ(Err, "") << Text;
  return F;
}

void parseFails(const std::string &Text) {
  Function F;
  EXPECT_NE(parseFunction(Text, F), "") << "expected failure:\n" << Text;
}

TEST(RtlParse, MinimalFunction) {
  Function F = parseOk("function f()\n"
                       "L0:\n"
                       "  ret 0;\n");
  EXPECT_EQ(F.Name, "f");
  ASSERT_EQ(F.Blocks.size(), 1u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Ret);
}

TEST(RtlParse, AllInstructionForms) {
  Function F = parseOk(
      "function g(a) [a:1,x:1,buf[8]] {assigned}\n"
      "L0:\n"
      "  r[1]=5;\n"
      "  r[2]=r[1];\n"
      "  r[3]=&S1;\n"
      "  r[4]=&@2;\n"
      "  r[5]=r[1]+r[2];\n"
      "  r[5]=r[5]-3;\n"
      "  r[5]=r[5]>>u2;\n"
      "  r[5]=r[5]<<1;\n"
      "  r[5]=r[5]>>1;\n"
      "  r[6]=-r[5];\n"
      "  r[6]=~r[6];\n"
      "  r[7]=-12;\n"
      "  r[8]=M[r[3]+4];\n"
      "  r[8]=M[S0];\n"
      "  M[r[3]]=r[8];\n"
      "  IC=r[8]?0;\n"
      "  PC=IC==0,L2;\n"
      "L1:\n"
      "  r[9]=call @3(r[8],7);\n"
      "  call @4();\n"
      "  PC=L0;\n"
      "L2:\n"
      "  prologue;\n"
      "  epilogue;\n"
      "  ret r[9];\n");
  EXPECT_TRUE(F.State.RegsAssigned);
  EXPECT_FALSE(F.State.RegAllocDone);
  EXPECT_EQ(F.NumParams, 1);
  EXPECT_TRUE(F.Slots[2].IsArray);
  EXPECT_EQ(F.Slots[2].SizeWords, 8);
  EXPECT_EQ(F.Blocks.size(), 3u);
  expectVerifies(F);
}

TEST(RtlParse, RoundTripThroughPrinter) {
  const char *Text = "function f(a,b) [a:1,b:1,t:1]\n"
                     "L0:\n"
                     "  r[32]=&S0;\n"
                     "  r[33]=M[r[32]];\n"
                     "  IC=r[33]?0;\n"
                     "  PC=IC<=0,L2;\n"
                     "L1:\n"
                     "  r[34]=r[33]*r[33];\n"
                     "  r[35]=r[34]+-1;\n"
                     "  ret r[35];\n"
                     "L2:\n"
                     "  ret 0;\n";
  Function F = parseOk(Text);
  Function G = parseOk(printFunction(F));
  EXPECT_EQ(printFunction(F), printFunction(G));
  EXPECT_EQ(canonicalize(F).Hash, canonicalize(G).Hash);
}

TEST(RtlParse, RoundTripsCompiledWorkloadCode) {
  // Naive code, batch-optimized code, and allocated code must all
  // round-trip text -> function -> text.
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i*7;i=i+1;}return s;}");
  Function &F = functionNamed(M, "f");
  PhaseManager PM;
  for (int Stage = 0; Stage < 2; ++Stage) {
    std::string Text = printFunction(F);
    Function G;
    ASSERT_EQ(parseFunction(Text, G), "") << Text;
    EXPECT_EQ(printFunction(G), Text);
    EXPECT_EQ(canonicalize(G).Hash, canonicalize(F).Hash);
    batchCompile(PM, F); // Second round: optimized + assigned code.
  }
}

TEST(RtlParse, CommentsAndBlankLines) {
  Function F = parseOk("# leading comment\n"
                       "function f()   # trailing comment\n"
                       "\n"
                       "L0:\n"
                       "  ret 0;  # done\n");
  EXPECT_EQ(F.Blocks[0].Insts.size(), 1u);
}

TEST(RtlParse, Errors) {
  parseFails("");                                    // No header.
  parseFails("function f(\nL0:\n ret 0;\n");         // Bad header.
  parseFails("function f()\n  ret 0;\n");            // Inst before label.
  parseFails("function f()\nL0:\n  ret 0\n");        // Missing semicolon.
  parseFails("function f()\nL0:\n  bogus;\n");       // Unknown statement.
  parseFails("function f()\nL0:\n  r[1]=M[r[2];\n"); // Unclosed bracket.
  parseFails("function f()\nL0:\n  PC=IC<<0,L0;\n"); // Bad condition.
  parseFails("function f()\nL0:\n  r[1]=5;\n");      // Falls off the end.
  parseFails("function f(a) [x:1]\nL0:\n ret 0;\n"); // Param not slot 0.
  parseFails("function f() {weird}\nL0:\n ret 0;\n");// Unknown flag.
  parseFails("function f()\nL0:\n  PC=L99;\n");      // Dangling label.
}

TEST(RtlParse, ConditionSpellings) {
  const char *Conds[] = {"==", "!=", "<",  "<=",  ">",  ">=",
                         "<u", "<=u", ">u", ">=u"};
  for (const char *CondStr : Conds) {
    std::string Text = std::string("function f()\nL0:\n  IC=r[1]?0;\n"
                                   "  PC=IC") +
                       CondStr + "0,L1;\nL1:\n  ret 0;\n";
    Function F = parseOk(Text);
    Function G = parseOk(printFunction(F));
    EXPECT_EQ(printFunction(F), printFunction(G)) << CondStr;
  }
}

} // namespace
