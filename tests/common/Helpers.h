//===- Helpers.h - Shared test utilities -----------------------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef POSE_TESTS_COMMON_HELPERS_H
#define POSE_TESTS_COMMON_HELPERS_H

#include "src/frontend/Compile.h"
#include "src/ir/Function.h"
#include "src/ir/Printer.h"
#include "src/ir/Verify.h"

#include <gtest/gtest.h>

namespace pose {
namespace testhelpers {

/// Compiles MC source, failing the current test on any diagnostic.
inline Module compileOrDie(const std::string &Source) {
  CompileResult R = compileMC(Source);
  EXPECT_TRUE(R.ok()) << R.diagText();
  return std::move(R.M);
}

/// Returns the function named \p Name, failing the test if absent.
inline Function &functionNamed(Module &M, const std::string &Name) {
  int Id = M.findGlobal(Name);
  EXPECT_GE(Id, 0) << "no function " << Name;
  Function *F = M.functionFor(Id);
  EXPECT_NE(F, nullptr) << Name << " is not a function";
  return *F;
}

/// Expects that \p F passes the IR verifier, printing it otherwise.
inline void expectVerifies(const Function &F) {
  std::string Err = verifyFunction(F);
  EXPECT_EQ(Err, "") << printFunction(F);
}

} // namespace testhelpers
} // namespace pose

#endif // POSE_TESTS_COMMON_HELPERS_H
