//===- interaction_test.cpp - Interaction analysis tests -----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Interaction.h"

#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

// Stand-ins for the paper's four abstract phases a, b, c, d of Figure 7.
constexpr PhaseId A = PhaseId::BranchChaining;
constexpr PhaseId B = PhaseId::Cse;
constexpr PhaseId C = PhaseId::UnreachableCode;
constexpr PhaseId D = PhaseId::LoopUnrolling;

uint16_t maskOf(std::initializer_list<PhaseId> Ps) {
  uint16_t M = 0;
  for (PhaseId P : Ps)
    M |= static_cast<uint16_t>(1u << static_cast<int>(P));
  return M;
}

/// Builds the weighted DAG of the paper's Figure 7:
///
///   root [abc]   --a--> n1 [bc], --b--> n2 [a? per text: b enables a on
///   path a-b-a, a disabled along b-…; c independent with a]
///
/// We reproduce the three textual claims exactly:
///  - "b enables a along the path a-b-a": a dormant at n1(post-a)?  No —
///    the figure has a active at root, dormant after its own application,
///    then b's application re-enables it.
///  - "it could be seen that a is not enabled by b along the path c-b"
///  - "phases dormant at the start can become active later (d along
///    b-c-d)"
EnumerationResult figure7() {
  EnumerationResult R;
  auto AddNode = [&R](uint16_t Active, uint16_t Dormant) {
    DagNode N;
    N.ActiveMask = Active;
    N.DormantMask = Dormant;
    R.Nodes.push_back(N);
    return static_cast<uint32_t>(R.Nodes.size() - 1);
  };
  const uint16_t All = maskOf({A, B, C, D});

  // Level 0: root, phases a, b, c active; d dormant.
  uint32_t Root = AddNode(maskOf({A, B, C}), All & ~maskOf({A, B, C}));
  // Level 1.
  uint32_t NA = AddNode(maskOf({B, C}), All & ~maskOf({B, C})); // after a
  uint32_t NB = AddNode(maskOf({C}), All & ~maskOf({C}));       // after b
  uint32_t NC = AddNode(maskOf({A, B}), All & ~maskOf({A, B})); // after c
  // Level 2.
  uint32_t NAB = AddNode(maskOf({A}), All & ~maskOf({A})); // a-b: a re-enabled
  uint32_t NAC = AddNode(0, All); // a-c leaf; also reached via c-a.
  uint32_t NBC = AddNode(maskOf({D}), All & ~maskOf({D})); // b-c: d enabled
  uint32_t NCB = AddNode(0, All); // c-b leaf: a NOT enabled by b here.
  // Level 3 leaves.
  uint32_t NABA = AddNode(0, All);
  uint32_t NBCD = AddNode(0, All);

  R.Nodes[Root].Edges = {{A, NA}, {B, NB}, {C, NC}};
  R.Nodes[NA].Edges = {{B, NAB}, {C, NAC}};
  R.Nodes[NB].Edges = {{C, NBC}};
  R.Nodes[NC].Edges = {{A, NAC}, {B, NCB}};
  R.Nodes[NAB].Edges = {{A, NABA}};
  R.Nodes[NBC].Edges = {{D, NBCD}};
  R.Stop = StopReason::Complete;
  computeWeights(R);
  return R;
}

TEST(Interaction, Figure7Weights) {
  EnumerationResult R = figure7();
  // Leaves weigh 1.
  EXPECT_EQ(R.Nodes[5].Weight, 1u); // NAC
  EXPECT_EQ(R.Nodes[7].Weight, 1u); // NCB
  // Interior: na = 1(nab->naba)+1(nac) = 2; nb = 1; nc = 1+1 = 2.
  EXPECT_EQ(R.Nodes[1].Weight, 2u);
  EXPECT_EQ(R.Nodes[2].Weight, 1u);
  EXPECT_EQ(R.Nodes[3].Weight, 2u);
  // Root: 2 + 1 + 2 = 5 — the figure's root weight.
  EXPECT_EQ(R.Nodes[0].Weight, 5u);
  EXPECT_FALSE(R.Cyclic);
}

TEST(Interaction, Figure7EnablingClaims) {
  EnumerationResult R = figure7();
  InteractionAnalysis IA;
  IA.addFunction(R);
  // "b enables a along the path a-b-a": the b edge NA->NAB has a dormant
  // before, active after. "a is not enabled by b along the path c-b":
  // NC->NCB has a... a was ACTIVE at NC, so it contributes to disabling,
  // not enabling. The only dormant->* b-transition for a is NA->NAB,
  // which is enabling: probability 1.
  EXPECT_DOUBLE_EQ(IA.enabling(A, B), 1.0);
  // "d along the path b-c-d": c enables d on NB->NBC (weight 1); c's
  // other edges Root->NC (weight 2) and NA->NAC (weight 1) keep d
  // dormant. e[d][c] = 1/4.
  EXPECT_NEAR(IA.enabling(D, C), 0.25, 1e-9);
  // Start probabilities: a, b, c active at the root; d not.
  EXPECT_DOUBLE_EQ(IA.startProbability(A), 1.0);
  EXPECT_DOUBLE_EQ(IA.startProbability(D), 0.0);
}

TEST(Interaction, Figure7DisablingClaims) {
  EnumerationResult R = figure7();
  InteractionAnalysis IA;
  IA.addFunction(R);
  // "a is active at the root node, but is disabled after b" (path b-c-d):
  // edge Root->NB via b: a active before, dormant after, weight 1. No
  // other b edge from an a-active node except NC->NCB (a active at NC,
  // dormant at NCB) weight 1. d[a][b] = (1+1)/(1+1) = 1.
  EXPECT_DOUBLE_EQ(IA.disabling(A, B), 1.0);
  // c never disables b at the root (b stays active at NC): mass says
  // Root->NC (b active->active, w=2), NA->NAC (b active->dormant, w=1),
  // NB->NBC (b dormant: not counted). d[b][c] = 1/3.
  EXPECT_NEAR(IA.disabling(B, C), 1.0 / 3.0, 1e-9);
}

TEST(Interaction, Figure7IndependenceClaims) {
  EnumerationResult R = figure7();
  InteractionAnalysis IA;
  IA.addFunction(R);
  // "a-c and c-a produce identical function instances … they are
  // independent in this situation. In contrast, sequences b-c and c-b do
  // not produce the same code."
  EXPECT_DOUBLE_EQ(IA.independence(A, C), 1.0);
  EXPECT_DOUBLE_EQ(IA.independence(C, A), 1.0); // Symmetric.
  EXPECT_DOUBLE_EQ(IA.independence(B, C), 0.0);
  // a and b are never both active with both orders converging: at root,
  // a-b leads to NAB, b-a does not exist (a dormant at NB).
  EXPECT_DOUBLE_EQ(IA.independence(A, B), 0.0);
}

TEST(Interaction, AccumulatesAcrossFunctions) {
  EnumerationResult R = figure7();
  InteractionAnalysis IA;
  IA.addFunction(R);
  IA.addFunction(R);
  EXPECT_EQ(IA.functionCount(), 2u);
  // Ratios are scale invariant.
  EXPECT_DOUBLE_EQ(IA.enabling(A, B), 1.0);
  EXPECT_DOUBLE_EQ(IA.startProbability(A), 1.0);
}

TEST(Interaction, RenderTables) {
  EnumerationResult R = figure7();
  InteractionAnalysis IA;
  IA.addFunction(R);
  std::string En = IA.renderTable(InteractionAnalysis::TableKind::Enabling);
  EXPECT_NE(En.find("St"), std::string::npos);
  EXPECT_NE(En.find("1.00"), std::string::npos);
  std::string Dis =
      IA.renderTable(InteractionAnalysis::TableKind::Disabling);
  EXPECT_NE(Dis.find("1.00"), std::string::npos);
  std::string Ind =
      IA.renderTable(InteractionAnalysis::TableKind::Independence);
  EXPECT_FALSE(Ind.empty());
}

/// Returns the 6-wide cell of \p Table at matrix position (Y, X), with
/// padding stripped — "" for a blank cell. \p StCol skips the Enabling
/// table's extra start-probability column.
std::string cell(const std::string &Table, PhaseId Y, PhaseId X,
                 bool StCol) {
  std::vector<std::string> Lines;
  for (size_t Pos = 0; Pos < Table.size();) {
    size_t Eol = Table.find('\n', Pos);
    Lines.push_back(Table.substr(Pos, Eol - Pos));
    Pos = Eol + 1;
  }
  const std::string &Row = Lines.at(1 + static_cast<size_t>(Y));
  size_t Col = 5 + (StCol ? 6 : 0) + static_cast<size_t>(X) * 6;
  std::string Cell = Row.substr(Col, 6);
  size_t Begin = Cell.find_first_not_of(' ');
  return Begin == std::string::npos ? "" : Cell.substr(Begin);
}

TEST(Interaction, TableGoldenCells) {
  // The fixed Figure 7 DAG renders to known cells. Beyond pinning the
  // format, this locks in the blanking rule: a cell is blank only when
  // the (Y, X) pair was never observed, while an observed-but-zero
  // probability renders as 0.00 — conflating them (the old < 0.005 rule)
  // hid real but rare interactions.
  EnumerationResult R = figure7();
  InteractionAnalysis IA;
  IA.addFunction(R);

  std::string En = IA.renderTable(InteractionAnalysis::TableKind::Enabling);
  std::string Header = "Phase    St";
  for (int X = 0; X != NumPhases; ++X)
    Header += std::string(5, ' ') + phaseCode(phaseByIndex(X));
  EXPECT_EQ(En.substr(0, En.find('\n')), Header);

  EXPECT_EQ(cell(En, A, B, true), "1.00"); // b enables a on a-b-a.
  EXPECT_EQ(cell(En, D, C, true), "0.25"); // c enables d on b-c-d.
  // a ran while b was dormant (NAB->NABA) and did not enable it:
  // observed, zero, so 0.00 — NOT blank.
  EXPECT_EQ(cell(En, B, A, true), "0.00");
  // a never runs while a is dormant: unobserved, blank.
  EXPECT_EQ(cell(En, A, A, true), "");
  // Instruction selection never runs in the figure: its column is blank.
  EXPECT_EQ(cell(En, A, PhaseId::InstructionSelection, true), "");
  // The St column holds the root-active probabilities.
  std::string RowA = En.substr(En.find('\n') + 1);
  RowA = RowA.substr(0, RowA.find('\n'));
  EXPECT_EQ(RowA.substr(5, 6), "  1.00"); // a active at the root.

  std::string Dis =
      IA.renderTable(InteractionAnalysis::TableKind::Disabling);
  EXPECT_EQ(cell(Dis, A, B, false), "1.00"); // b always disables a.
  EXPECT_EQ(cell(Dis, B, C, false), "0.33"); // c disables b 1/3 of mass.
  // a ran while c was active (root a-edge) and left it active: 0.00.
  EXPECT_EQ(cell(Dis, C, A, false), "0.00");
  EXPECT_EQ(cell(Dis, A, A, false), "");

  std::string Ind =
      IA.renderTable(InteractionAnalysis::TableKind::Independence);
  // a/c are fully independent: probability 1.0 > 0.995 renders blank
  // (the paper's convention); b/c met and always conflicted: 0.00.
  EXPECT_EQ(cell(Ind, A, C, false), "");
  EXPECT_EQ(cell(Ind, B, C, false), "0.00");
}

TEST(Interaction, RealEnumerationHasSaneProbabilities) {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult R = E.enumerate(functionNamed(M, "f"));
  ASSERT_TRUE(R.complete());
  InteractionAnalysis IA;
  IA.addFunction(R);
  for (int Y = 0; Y != NumPhases; ++Y)
    for (int X = 0; X != NumPhases; ++X) {
      double En = IA.enabling(phaseByIndex(Y), phaseByIndex(X));
      double Dis = IA.disabling(phaseByIndex(Y), phaseByIndex(X));
      double Ind = IA.independence(phaseByIndex(Y), phaseByIndex(X));
      EXPECT_GE(En, 0.0);
      EXPECT_LE(En, 1.0);
      EXPECT_GE(Dis, 0.0);
      EXPECT_LE(Dis, 1.0);
      EXPECT_GE(Ind, 0.0);
      EXPECT_LE(Ind, 1.0);
      EXPECT_DOUBLE_EQ(Ind, IA.independence(phaseByIndex(X),
                                            phaseByIndex(Y)));
    }
  // Instruction selection is always active initially on naive code.
  EXPECT_DOUBLE_EQ(IA.startProbability(PhaseId::InstructionSelection), 1.0);
  // Register allocation requires instruction selection first: dormant at
  // the start (the paper's VPO observation, reproduced organically).
  EXPECT_DOUBLE_EQ(IA.startProbability(PhaseId::RegisterAllocation), 0.0);
}

} // namespace
