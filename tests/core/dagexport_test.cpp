//===- dagexport_test.cpp - DOT export tests ------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/DagExport.h"

#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

#include <cctype>

using namespace pose;
using namespace pose::testhelpers;

namespace {

EnumerationResult enumerateSum() {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  return E.enumerate(functionNamed(M, "f"));
}

TEST(DagExport, WellFormedDot) {
  EnumerationResult R = enumerateSum();
  std::string Dot = dagToDot(R);
  EXPECT_EQ(Dot.rfind("digraph", 0), 0u);
  EXPECT_EQ(Dot.back(), '\n');
  EXPECT_NE(Dot.find("}"), std::string::npos);
  // Root is bold, leaves are double circles, edges carry phase letters.
  EXPECT_NE(Dot.find("style=bold"), std::string::npos);
  EXPECT_NE(Dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"s\""), std::string::npos);
  // No dangling edge targets: every "-> nX" has a matching node line.
  size_t Pos = 0;
  while ((Pos = Dot.find("-> n", Pos)) != std::string::npos) {
    Pos += 3;
    size_t End = Dot.find(' ', Pos);
    std::string Node = Dot.substr(Pos, End - Pos);
    EXPECT_NE(Dot.find("  " + Node + " ["), std::string::npos) << Node;
  }
}

TEST(DagExport, TruncationByMaxNodes) {
  EnumerationResult R = enumerateSum();
  ASSERT_GT(R.Nodes.size(), 10u);
  DagExportOptions Opts;
  Opts.MaxNodes = 10;
  std::string Dot = dagToDot(R, Opts);
  EXPECT_NE(Dot.find("more nodes"), std::string::npos);
  // Exactly 10 node-declaration lines (start with "  n", no "->").
  size_t Count = 0, Pos = 0;
  while ((Pos = Dot.find("\n  n", Pos)) != std::string::npos) {
    size_t LineEnd = Dot.find('\n', Pos + 1);
    std::string Line = Dot.substr(Pos + 1, LineEnd - Pos - 1);
    // Node declarations are "  n<digits> [..." without an edge arrow
    // (this skips the "node [shape=...]" preamble).
    if (Line.size() > 3 && std::isdigit(static_cast<unsigned char>(Line[3])) &&
        Line.find("->") == std::string::npos)
      ++Count;
    Pos = LineEnd;
  }
  EXPECT_EQ(Count, 10u);
}

TEST(DagExport, EmptyResult) {
  EnumerationResult R;
  std::string Dot = dagToDot(R);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
}

TEST(DagExport, GraphNameIsQuotedAndEscaped) {
  // The graph name comes from user input (the function name on the posec
  // command line); hostile names must stay inside the quoted DOT ID.
  EnumerationResult R;
  DagExportOptions Opts;
  Opts.GraphName = "a\"; x [y=z]; digraph \\";
  std::string Dot = dagToDot(R, Opts);
  EXPECT_EQ(Dot.rfind("digraph \"a\\\"; x [y=z]; digraph \\\\\" {", 0), 0u);

  Opts.GraphName = "line1\nline2";
  Dot = dagToDot(R, Opts);
  EXPECT_EQ(Dot.rfind("digraph \"line1\\nline2\" {", 0), 0u);
  EXPECT_EQ(Dot.find("line1\nline2"), std::string::npos);

  // Names that are plain identifiers still render (quoted) unchanged.
  Opts.GraphName = "squares";
  Dot = dagToDot(R, Opts);
  EXPECT_EQ(Dot.rfind("digraph \"squares\" {", 0), 0u);
}

TEST(DagExport, EmptyGraphNameFallsBackToDefault) {
  // DOT requires an ID after "digraph"; an empty quoted ID is rejected by
  // some tools, so an empty name falls back to the default.
  EnumerationResult R;
  DagExportOptions Opts;
  Opts.GraphName = "";
  std::string Dot = dagToDot(R, Opts);
  EXPECT_EQ(Dot.rfind("digraph \"phase_order_space\" {", 0), 0u);
}

} // namespace
