//===- robustness_test.cpp - Guarded, budget-aware enumeration tests ------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The robustness layer: every stop condition must yield a self-consistent
// partial DAG with the right StopReason, deterministically; injected
// verifier failures must prune exactly one edge and nothing else.
//
//===----------------------------------------------------------------------===//

#include "src/core/Enumerator.h"

#include "src/core/Compilers.h"
#include "src/core/Search.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

EnumerationResult enumerateFn(Module &M, const std::string &Name,
                              EnumeratorConfig Cfg = {}) {
  PhaseManager PM;
  Enumerator E(PM, Cfg);
  return E.enumerate(functionNamed(M, Name));
}

/// A large real function for the resource-limit tests: big enough that a
/// tiny deadline or memory budget trips mid-enumeration.
Function bigWorkloadFunction() {
  const Workload *W = findWorkload("sha");
  EXPECT_NE(W, nullptr);
  CompileResult R = compileMC(W->Source);
  EXPECT_TRUE(R.ok()) << R.diagText();
  Module &M = R.M;
  return *M.functionFor(M.findGlobal("sha_transform"));
}

/// Partial DAGs must still satisfy every structural invariant: edges in
/// range, weights consistent, levels monotone.
void expectSelfConsistent(const EnumerationResult &R) {
  for (const DagNode &N : R.Nodes) {
    uint64_t Sum = 0;
    for (const DagEdge &E : N.Edges) {
      ASSERT_LT(E.To, R.Nodes.size());
      EXPECT_LE(R.Nodes[E.To].Level, N.Level + 1);
      Sum += R.Nodes[E.To].Weight;
    }
    if (N.isLeaf()) {
      EXPECT_EQ(N.Weight, 1u);
    } else if (!R.Cyclic) {
      EXPECT_EQ(N.Weight, Sum);
    }
  }
}

std::vector<HashTriple> sortedHashes(const EnumerationResult &R) {
  std::vector<HashTriple> H;
  H.reserve(R.Nodes.size());
  for (const DagNode &N : R.Nodes)
    H.push_back(N.Hash);
  std::sort(H.begin(), H.end(), [](const HashTriple &A, const HashTriple &B) {
    return std::tie(A.InstCount, A.ByteSum, A.Crc) <
           std::tie(B.InstCount, B.ByteSum, B.Crc);
  });
  return H;
}

TEST(Robustness, LevelAndNodeBudgetsReportDistinctReasons) {
  Module M1 = compileOrDie(SumSource);
  EnumeratorConfig LevelCfg;
  LevelCfg.MaxLevelSequences = 3;
  EnumerationResult RL = enumerateFn(M1, "f", LevelCfg);
  EXPECT_EQ(RL.Stop, StopReason::LevelBudget);
  EXPECT_FALSE(RL.complete());
  expectSelfConsistent(RL);

  Module M2 = compileOrDie(SumSource);
  EnumeratorConfig NodeCfg;
  NodeCfg.MaxTotalNodes = 10;
  EnumerationResult RN = enumerateFn(M2, "f", NodeCfg);
  EXPECT_EQ(RN.Stop, StopReason::NodeBudget);
  EXPECT_FALSE(RN.complete());
  expectSelfConsistent(RN);
}

TEST(Robustness, DeadlineStopsLargeEnumeration) {
  Function F = bigWorkloadFunction();
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.DeadlineMs = 1;
  Enumerator E(PM, Cfg);
  EnumerationResult R = E.enumerate(F);
  EXPECT_EQ(R.Stop, StopReason::Deadline);
  EXPECT_FALSE(R.complete());
  EXPECT_GE(R.Nodes.size(), 1u);
  expectSelfConsistent(R);
}

TEST(Robustness, MemoryBudgetStopsLargeEnumeration) {
  Function F = bigWorkloadFunction();
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.MaxMemoryBytes = 50'000;
  Enumerator E(PM, Cfg);
  EnumerationResult R = E.enumerate(F);
  EXPECT_EQ(R.Stop, StopReason::MemoryBudget);
  EXPECT_GT(R.ApproxMemoryBytes, Cfg.MaxMemoryBytes);
  expectSelfConsistent(R);
}

TEST(Robustness, CancellationStopsAtLevelBoundary) {
  Module M = compileOrDie(SumSource);
  StopToken Token;
  Token.requestStop();
  EnumeratorConfig Cfg;
  Cfg.Stop = &Token;
  EnumerationResult R = enumerateFn(M, "f", Cfg);
  EXPECT_EQ(R.Stop, StopReason::Cancelled);
  EXPECT_GE(R.Nodes.size(), 1u);
  expectSelfConsistent(R);
}

TEST(Robustness, PartialEnumerationIsDeterministic) {
  EnumeratorConfig Cfg;
  Cfg.MaxTotalNodes = 10;
  Module M1 = compileOrDie(SumSource);
  Module M2 = compileOrDie(SumSource);
  EnumerationResult A = enumerateFn(M1, "f", Cfg);
  EnumerationResult B = enumerateFn(M2, "f", Cfg);
  EXPECT_EQ(A.Stop, B.Stop);
  ASSERT_EQ(A.Nodes.size(), B.Nodes.size());
  EXPECT_EQ(A.AttemptedPhases, B.AttemptedPhases);
  EXPECT_EQ(A.ApproxMemoryBytes, B.ApproxMemoryBytes);
  for (size_t I = 0; I != A.Nodes.size(); ++I) {
    EXPECT_EQ(A.Nodes[I].Hash, B.Nodes[I].Hash);
    EXPECT_EQ(A.Nodes[I].Weight, B.Nodes[I].Weight);
  }
}

TEST(Robustness, VerifiedEnumerationMatchesUnverified) {
  Module M1 = compileOrDie(SumSource);
  Module M2 = compileOrDie(SumSource);
  EnumerationResult Plain = enumerateFn(M1, "f");
  EnumeratorConfig Cfg;
  Cfg.VerifyIr = true;
  EnumerationResult Verified = enumerateFn(M2, "f", Cfg);
  // All fifteen phases are healthy: verification must change nothing.
  EXPECT_EQ(Verified.Stop, StopReason::Complete);
  EXPECT_TRUE(Verified.Diagnostics.empty());
  EXPECT_EQ(sortedHashes(Plain), sortedHashes(Verified));
  EXPECT_EQ(Plain.AttemptedPhases, Verified.AttemptedPhases);
}

TEST(Robustness, InjectedFaultPrunesExactlyThatEdge) {
  // Ground truth: the clean space, and the edge the fault will hit (the
  // 1st application of instruction selection happens at the root).
  Module M1 = compileOrDie(SumSource);
  EnumerationResult Clean = enumerateFn(M1, "f");
  ASSERT_TRUE(Clean.complete());
  ASSERT_TRUE(Clean.Nodes[0].activeAt(PhaseId::InstructionSelection));
  const uint32_t Pruned =
      Clean.Nodes[0].childVia(PhaseId::InstructionSelection);
  ASSERT_NE(Pruned, UINT32_MAX);

  // Faulted run: roll back that one application, keep everything else.
  Module M2 = compileOrDie(SumSource);
  FaultPlan Plan;
  Plan.add(PhaseId::InstructionSelection, 1);
  EnumeratorConfig Cfg;
  Cfg.VerifyIr = true;
  Cfg.Faults = &Plan;
  EnumerationResult Faulted = enumerateFn(M2, "f", Cfg);
  EXPECT_EQ(Faulted.Stop, StopReason::VerifierFailure);
  EXPECT_FALSE(Faulted.complete());
  ASSERT_EQ(Faulted.Diagnostics.size(), 1u);
  EXPECT_EQ(Faulted.Diagnostics[0].Phase, PhaseId::InstructionSelection);
  EXPECT_TRUE(Faulted.Diagnostics[0].Injected);
  EXPECT_FALSE(
      Faulted.Nodes[0].activeAt(PhaseId::InstructionSelection));
  expectSelfConsistent(Faulted);

  // The surviving space must equal the clean space with that edge
  // removed: exactly the nodes still reachable from the root, and every
  // edge among them except the pruned one.
  std::set<uint32_t> Reachable{0};
  std::vector<uint32_t> Work{0};
  size_t ExpectedEdges = 0;
  while (!Work.empty()) {
    uint32_t Id = Work.back();
    Work.pop_back();
    for (const DagEdge &E : Clean.Nodes[Id].Edges) {
      if (Id == 0 && E.Phase == PhaseId::InstructionSelection)
        continue;
      ++ExpectedEdges;
      if (Reachable.insert(E.To).second)
        Work.push_back(E.To);
    }
  }
  std::vector<HashTriple> ExpectedHashes;
  for (uint32_t Id : Reachable)
    ExpectedHashes.push_back(Clean.Nodes[Id].Hash);
  std::sort(ExpectedHashes.begin(), ExpectedHashes.end(),
            [](const HashTriple &A, const HashTriple &B) {
              return std::tie(A.InstCount, A.ByteSum, A.Crc) <
                     std::tie(B.InstCount, B.ByteSum, B.Crc);
            });
  EXPECT_EQ(sortedHashes(Faulted), ExpectedHashes);
  size_t FaultedEdges = 0;
  for (const DagNode &N : Faulted.Nodes)
    FaultedEdges += N.Edges.size();
  EXPECT_EQ(FaultedEdges, ExpectedEdges);
}

TEST(Robustness, SearchHonorsCancellation) {
  Module M = compileOrDie(SumSource);
  PhaseManager PM;
  SequenceSearch Search(PM, M, "f");
  StopToken Token;
  Token.requestStop();
  SearchConfig Cfg;
  Cfg.Stop = &Token;
  SearchResult R =
      Search.randomSearch(functionNamed(M, "f"), Objective::CodeSize, Cfg);
  EXPECT_EQ(R.Stop, StopReason::Cancelled);
  EXPECT_EQ(R.Evaluations, 0u);
  R = Search.geneticSearch(functionNamed(M, "f"), Objective::CodeSize, Cfg);
  EXPECT_EQ(R.Stop, StopReason::Cancelled);
}

TEST(Robustness, BatchCompileHonorsCancellation) {
  Module M = compileOrDie(SumSource);
  PhaseManager PM;
  StopToken Token;
  Token.requestStop();
  ResourceGovernor Gov;
  Gov.setStopToken(&Token);
  Function &F = functionNamed(M, "f");
  const size_t Before = F.instructionCount();
  CompileStats S = batchCompile(PM, F, &Gov);
  EXPECT_EQ(S.Stop, StopReason::Cancelled);
  EXPECT_EQ(S.Attempted, 0u);
  EXPECT_EQ(F.instructionCount(), Before);
  // Without a governor the same compile runs to completion.
  CompileStats Full = batchCompile(PM, F);
  EXPECT_EQ(Full.Stop, StopReason::Complete);
  EXPECT_GT(Full.Active, 0u);
}

} // namespace
