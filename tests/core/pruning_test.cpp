//===- pruning_test.cpp - Independence-pruning tests ----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Validates the Section 7 future-work feature: enumeration with
// independence-based edge prediction must reproduce the ground-truth DAG
// exactly when trained on the same function, while skipping optimizer
// invocations.
//
//===----------------------------------------------------------------------===//

#include "src/core/Interaction.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *Sources[] = {
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}",
    "int t[8]={1,2,3,4,5,6,7,8};\n"
    "int f(int n){int s=0;int i=0;while(i<n){s=s+t[i&7]*3;i=i+1;}"
    "return s;}",
    "int f(int a,int b){int r;if(a>b)r=a*2;else r=b*4;return r+a;}",
};

/// Compares two enumeration results node by node (same hashes, same
/// edge structure under the node-id correspondence induced by hashes).
void expectSameDag(const EnumerationResult &A, const EnumerationResult &B) {
  ASSERT_EQ(A.Nodes.size(), B.Nodes.size());
  // Hash -> index maps (hashes are unique per result).
  auto SortedEdges = [](const EnumerationResult &R, const DagNode &N) {
    std::vector<std::pair<char, HashTriple>> Out;
    for (const DagEdge &E : N.Edges)
      Out.push_back({phaseCode(E.Phase), R.Nodes[E.To].Hash});
    std::sort(Out.begin(), Out.end(),
              [](const auto &X, const auto &Y) {
                if (X.first != Y.first)
                  return X.first < Y.first;
                return X.second.Crc < Y.second.Crc;
              });
    return Out;
  };
  for (size_t I = 0; I != A.Nodes.size(); ++I) {
    // Find B's node with A's hash.
    const DagNode *BN = nullptr;
    for (const DagNode &Cand : B.Nodes)
      if (Cand.Hash == A.Nodes[I].Hash) {
        BN = &Cand;
        break;
      }
    ASSERT_NE(BN, nullptr) << "node " << I << " missing";
    EXPECT_EQ(A.Nodes[I].ActiveMask, BN->ActiveMask) << "node " << I;
    auto EA = SortedEdges(A, A.Nodes[I]);
    auto EB = SortedEdges(B, *BN);
    ASSERT_EQ(EA.size(), EB.size()) << "node " << I;
    for (size_t K = 0; K != EA.size(); ++K) {
      EXPECT_EQ(EA[K].first, EB[K].first);
      EXPECT_EQ(EA[K].second, EB[K].second);
    }
  }
}

TEST(IndependencePruning, ReproducesGroundTruthWithFewerAttempts) {
  PhaseManager PM;
  for (const char *Src : Sources) {
    Module M = compileOrDie(Src);
    Function &F = functionNamed(M, "f");

    // Ground truth + training.
    Enumerator Plain(PM, EnumeratorConfig{});
    EnumerationResult Truth = Plain.enumerate(F);
    ASSERT_TRUE(Truth.complete());
    InteractionAnalysis IA;
    IA.addFunction(Truth);

    EnumeratorConfig Pruned;
    Pruned.UseIndependencePruning = true;
    for (int X = 0; X != NumPhases; ++X)
      for (int Y = 0; Y != NumPhases; ++Y)
        Pruned.TrainedIndependence[X][Y] =
            IA.alwaysIndependent(phaseByIndex(X), phaseByIndex(Y));
    Enumerator Fast(PM, Pruned);
    EnumerationResult R = Fast.enumerate(F);
    ASSERT_TRUE(R.complete());

    expectSameDag(Truth, R);
    // Some pairs are always independent in loops; predictions fire there
    // and save attempts. (Straight-line functions may train nothing.)
    EXPECT_LE(R.AttemptedPhases + R.PredictedEdges, Truth.AttemptedPhases);
    if (R.PredictedEdges > 0) {
      EXPECT_LT(R.AttemptedPhases, Truth.AttemptedPhases);
    }
  }
}

TEST(IndependencePruning, OffByDefault) {
  EnumeratorConfig Cfg;
  EXPECT_FALSE(Cfg.UseIndependencePruning);
  Module M = compileOrDie(Sources[0]);
  PhaseManager PM;
  Enumerator E(PM, Cfg);
  EnumerationResult R = E.enumerate(functionNamed(M, "f"));
  EXPECT_EQ(R.PredictedEdges, 0u);
}

TEST(IndependencePruning, AlwaysIndependentRequiresObservations) {
  InteractionAnalysis Empty;
  EXPECT_FALSE(Empty.alwaysIndependent(PhaseId::BranchChaining,
                                       PhaseId::Cse));
}

} // namespace
