//===- search_test.cpp - Heuristic search tests ---------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Search.h"

#include "src/core/DagPaths.h"
#include "src/core/Enumerator.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *ProgramSource =
    "int acc = 0;\n"
    "int mix(int n) {\n"
    "  int s = 0; int i = 0;\n"
    "  while (i < n) { s = s + i * 5 + (i << 2); i = i + 1; }\n"
    "  acc = acc + s;\n"
    "  return s;\n"
    "}\n"
    "int main() { out(mix(10)); out(mix(3)); return acc; }\n";

/// Exhaustive optimum for comparison.
uint32_t optimalCodeSize(const Function &Root) {
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult R = E.enumerate(Root);
  EXPECT_TRUE(R.complete());
  uint32_t Best = UINT32_MAX;
  for (const DagNode &N : R.Nodes)
    Best = std::min(Best, N.CodeSize);
  return Best;
}

class SearchTest : public ::testing::Test {
protected:
  void SetUp() override {
    M = compileOrDie(ProgramSource);
    Root = functionNamed(M, "mix");
  }
  Module M;
  Function Root;
  PhaseManager PM;
};

TEST_F(SearchTest, GeneticFindsNearOptimalCodeSize) {
  uint32_t Optimal = optimalCodeSize(Root);
  SequenceSearch S(PM, M, "main");
  SearchConfig Cfg;
  Cfg.Seed = 3;
  SearchResult R = S.geneticSearch(Root, Objective::CodeSize, Cfg);
  EXPECT_LT(R.BestFitness, Root.instructionCount());
  // The paper's related work (ref [9]): biased sampling finds good
  // solutions. Demand within 15% of the exhaustive optimum.
  EXPECT_LE(R.BestFitness, static_cast<uint64_t>(Optimal * 1.15 + 1));
  expectVerifies(R.BestInstance);
}

TEST_F(SearchTest, HillClimbImproves) {
  SequenceSearch S(PM, M, "main");
  SearchConfig Cfg;
  Cfg.Seed = 11;
  Cfg.MaxEvaluations = 300;
  SearchResult R = S.hillClimb(Root, Objective::CodeSize, Cfg);
  EXPECT_LT(R.BestFitness, Root.instructionCount());
  EXPECT_LE(R.Evaluations, Cfg.MaxEvaluations + NumPhases); // Cap holds.
  expectVerifies(R.BestInstance);
}

TEST_F(SearchTest, RandomSearchRespectsBudget) {
  SequenceSearch S(PM, M, "main");
  SearchConfig Cfg;
  Cfg.Seed = 5;
  Cfg.MaxEvaluations = 100;
  SearchResult R = S.randomSearch(Root, Objective::CodeSize, Cfg);
  EXPECT_LE(R.Evaluations, Cfg.MaxEvaluations);
  EXPECT_LT(R.BestFitness, Root.instructionCount());
}

TEST_F(SearchTest, DedupSavesEvaluations) {
  SequenceSearch S(PM, M, "main");
  SearchConfig With;
  With.Seed = 7;
  With.MaxEvaluations = 200;
  SearchConfig Without = With;
  Without.DedupWithHashes = false;
  SearchResult RWith = S.randomSearch(Root, Objective::CodeSize, With);
  SearchResult RWithout =
      S.randomSearch(Root, Objective::CodeSize, Without);
  // Reference [14]: many attempted sequences map to the same instance;
  // hashing detects them and avoids redundant evaluations.
  EXPECT_GT(RWith.CacheHits, 0u);
  EXPECT_EQ(RWithout.CacheHits, 0u);
  // Cache hits do not consume the distinct-evaluation budget, so with
  // dedup the same budget covers a superset of the sampled sequences:
  // never a worse result.
  EXPECT_LE(RWith.BestFitness, RWithout.BestFitness);
}

TEST_F(SearchTest, DynamicCountObjective) {
  SequenceSearch S(PM, M, "main");
  SearchConfig Cfg;
  Cfg.Seed = 13;
  Cfg.Generations = 10;
  Cfg.PopulationSize = 10;
  SearchResult R = S.geneticSearch(Root, Objective::DynamicCount, Cfg);
  // The best instance must behave identically and run faster than naive.
  Interpreter Sim(M);
  RunResult Base = Sim.run("main", {});
  Sim.overrideFunction("mix", &R.BestInstance);
  RunResult Opt = Sim.run("main", {});
  ASSERT_TRUE(Base.Ok);
  ASSERT_TRUE(Opt.Ok);
  EXPECT_TRUE(Base.sameBehavior(Opt));
  EXPECT_EQ(R.BestFitness, Opt.DynamicInsts);
  EXPECT_LT(Opt.DynamicInsts, Base.DynamicInsts);
}

TEST_F(SearchTest, DeterministicForSeed) {
  SequenceSearch S(PM, M, "main");
  SearchConfig Cfg;
  Cfg.Seed = 21;
  Cfg.Generations = 5;
  SearchResult A = S.geneticSearch(Root, Objective::CodeSize, Cfg);
  SearchResult B = S.geneticSearch(Root, Objective::CodeSize, Cfg);
  EXPECT_EQ(A.BestFitness, B.BestFitness);
  EXPECT_EQ(A.Evaluations, B.Evaluations);
  EXPECT_EQ(A.BestSequence, B.BestSequence);
}

} // namespace
