//===- enumerator_extra_test.cpp - Enumerator bookkeeping edge cases -------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Enumerator.h"

#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

TEST(EnumeratorExtra, CyclicGraphWeightsFallBack) {
  // Hand-built 2-cycle: computeWeights must flag it and terminate with
  // finite weights rather than looping.
  EnumerationResult R;
  DagNode A, B;
  A.Edges.push_back({PhaseId::BranchChaining, 1});
  B.Edges.push_back({PhaseId::Cse, 0});
  R.Nodes.push_back(A);
  R.Nodes.push_back(B);
  computeWeights(R);
  EXPECT_TRUE(R.Cyclic);
  EXPECT_GE(R.Nodes[0].Weight, 1u);
  EXPECT_GE(R.Nodes[1].Weight, 1u);
}

TEST(EnumeratorExtra, LevelBookkeepingIsConsistent) {
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i*3;i=i+1;}return s;}");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult R = E.enumerate(functionNamed(M, "f"));
  ASSERT_TRUE(R.complete());

  // Levels: new-node counts must sum to the node count; level 0 holds
  // exactly the root; attempted >= active at every level.
  uint64_t NodeSum = 0, AttemptSum = 0;
  for (const LevelStat &L : R.Levels) {
    NodeSum += L.NewNodes;
    AttemptSum += L.Attempted;
    EXPECT_GE(L.Attempted, L.Active);
  }
  EXPECT_EQ(NodeSum, R.Nodes.size());
  EXPECT_EQ(AttemptSum, R.AttemptedPhases);
  EXPECT_EQ(R.Levels[0].NewNodes, 1u);
  EXPECT_EQ(R.Levels[0].ActiveSequences, 1u);

  // Node levels: root at 0; every other node discovered one level after
  // some parent (BFS), and its level matches its shortest path length.
  EXPECT_EQ(R.Nodes[0].Level, 0u);
  for (size_t I = 1; I != R.Nodes.size(); ++I) {
    uint32_t Best = UINT32_MAX;
    for (const DagNode &P : R.Nodes)
      for (const DagEdge &Ed : P.Edges)
        if (Ed.To == I)
          Best = std::min(Best, P.Level + 1);
    EXPECT_EQ(R.Nodes[I].Level, Best) << "node " << I;
  }
}

TEST(EnumeratorExtra, RootStatusesCoverAllPhases) {
  Module M = compileOrDie("int f(int a){ return a + 2; }");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult R = E.enumerate(functionNamed(M, "f"));
  // On straight-line code most phases are dormant at the root; only s
  // (and possibly o) are active. Either way every phase is resolved.
  EXPECT_EQ(R.Nodes[0].ActiveMask | R.Nodes[0].DormantMask,
            (1u << NumPhases) - 1);
  EXPECT_TRUE(R.Nodes[0].activeAt(PhaseId::InstructionSelection));
  EXPECT_FALSE(R.Nodes[0].activeAt(PhaseId::RegisterAllocation));
}

TEST(EnumeratorExtra, SequenceBudgetTriggersIncomplete) {
  Module M = compileOrDie(
      "int f(int a,int b,int c){int x=a*b;int y=b*c;int z=c*a;"
      "int w=0;int i=0;while(i<a){if(x>y)w=w+z;else w=w-x;i=i+1;}"
      "return w+x+y+z;}");
  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = 3; // Absurdly tight.
  PhaseManager PM;
  Enumerator E(PM, Cfg);
  EnumerationResult R = E.enumerate(functionNamed(M, "f"));
  EXPECT_FALSE(R.complete());
  // Weights still computed for the partial space (finite).
  for (const DagNode &N : R.Nodes)
    EXPECT_GE(N.Weight, 0u);
}

} // namespace
