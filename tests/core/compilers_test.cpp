//===- compilers_test.cpp - Batch and probabilistic compiler tests -------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Compilers.h"

#include "src/core/Enumerator.h"
#include "src/machine/EntryExit.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *ProgramSource =
    "int tab[8] = {3,1,4,1,5,9,2,6};\n"
    "int weigh(int lo, int hi) {\n"
    "  int s = 0; int i;\n"
    "  for (i = lo; i < hi; i = i + 1) s = s + tab[i] * 4;\n"
    "  return s;\n"
    "}\n"
    "int main() { out(weigh(0, 8)); out(weigh(2, 6)); return weigh(1, 7); }\n";

InteractionAnalysis trainOn(const char *Source,
                            std::initializer_list<const char *> Funcs) {
  Module M = compileOrDie(Source);
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  InteractionAnalysis IA;
  for (const char *Name : Funcs) {
    EnumerationResult R = E.enumerate(functionNamed(M, Name));
    EXPECT_TRUE(R.complete());
    IA.addFunction(R);
  }
  return IA;
}

TEST(BatchCompiler, OptimizesAndPreservesBehavior) {
  Module M = compileOrDie(ProgramSource);
  Interpreter Sim(M);
  RunResult Base = Sim.run("main", {});
  ASSERT_TRUE(Base.Ok) << Base.Error;

  PhaseManager PM;
  uint64_t SizeBefore = 0, SizeAfter = 0;
  for (Function &F : M.Functions) {
    SizeBefore += F.instructionCount();
    CompileStats S = batchCompile(PM, F);
    EXPECT_GT(S.Attempted, 0u);
    EXPECT_GT(S.Active, 0u);
    EXPECT_LE(S.Active, S.Attempted);
    expectVerifies(F);
    SizeAfter += F.instructionCount();
  }
  EXPECT_LT(SizeAfter, SizeBefore * 3 / 4); // Naive code shrinks a lot.
  RunResult After = Sim.run("main", {});
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_TRUE(Base.sameBehavior(After));
  // Optimization reduces dynamic instruction counts substantially.
  EXPECT_LT(After.DynamicInsts, Base.DynamicInsts / 2);
}

TEST(BatchCompiler, ReachesFixedPoint) {
  Module M = compileOrDie(ProgramSource);
  PhaseManager PM;
  Function &F = functionNamed(M, "weigh");
  batchCompile(PM, F);
  CompileStats Second = batchCompile(PM, F);
  // A second batch compile finds nothing else to do (one silent pass).
  EXPECT_EQ(Second.Active, 0u);
}

TEST(ProbabilisticCompiler, MatchesBatchQualityWithFewerAttempts) {
  InteractionAnalysis IA = trainOn(ProgramSource, {"weigh", "main"});

  // Fresh module for each strategy.
  Module MBatch = compileOrDie(ProgramSource);
  Module MProb = compileOrDie(ProgramSource);
  PhaseManager PM;
  ProbabilisticCompiler PC(PM, IA);

  uint64_t BatchAttempted = 0, ProbAttempted = 0;
  uint64_t BatchActive = 0, ProbActive = 0;
  for (Function &F : MBatch.Functions) {
    CompileStats S = batchCompile(PM, F);
    BatchAttempted += S.Attempted;
    BatchActive += S.Active;
  }
  for (Function &F : MProb.Functions) {
    CompileStats S = PC.compile(F);
    ProbAttempted += S.Attempted;
    ProbActive += S.Active;
    expectVerifies(F);
  }
  // The headline claim of Section 6: far fewer attempted phases…
  EXPECT_LT(ProbAttempted, BatchAttempted);
  EXPECT_GT(ProbActive, 0u);

  // …at comparable quality.
  Interpreter SimBatch(MBatch), SimProb(MProb);
  RunResult RB = SimBatch.run("main", {});
  RunResult RP = SimProb.run("main", {});
  ASSERT_TRUE(RB.Ok) << RB.Error;
  ASSERT_TRUE(RP.Ok) << RP.Error;
  EXPECT_TRUE(RB.sameBehavior(RP));
  double Ratio = static_cast<double>(RP.DynamicInsts) /
                 static_cast<double>(RB.DynamicInsts);
  EXPECT_LT(Ratio, 1.25); // Within the paper's "comparable performance".

  (void)BatchActive;
}

TEST(ProbabilisticCompiler, HonorsLegality) {
  InteractionAnalysis IA = trainOn(ProgramSource, {"weigh"});
  Module M = compileOrDie(ProgramSource);
  PhaseManager PM;
  ProbabilisticCompiler PC(PM, IA);
  Function &F = functionNamed(M, "weigh");
  CompileStats S = PC.compile(F);
  // No crash, verifier clean, and the sequence contains only phase codes.
  expectVerifies(F);
  for (char C : S.ActiveSequence)
    EXPECT_NE(std::string("bcdghijklnoqrsu").find(C), std::string::npos);
}

TEST(ProbabilisticCompiler, BenefitWeightingKeepsQuality) {
  // The paper's named improvement: weight selection by measured per-phase
  // code-size benefit. Must stay behaviour-preserving and not regress
  // code size on the training program.
  InteractionAnalysis IA = trainOn(ProgramSource, {"weigh", "main"});
  EXPECT_GT(IA.averageBenefit(PhaseId::InstructionSelection), 0.0);
  EXPECT_GT(IA.averageBenefit(PhaseId::DeadAssignElim), 0.0);

  Module MPlain = compileOrDie(ProgramSource);
  Module MBenefit = compileOrDie(ProgramSource);
  PhaseManager PM;
  ProbabilisticCompiler Plain(PM, IA, /*UseBenefits=*/false);
  ProbabilisticCompiler Weighted(PM, IA, /*UseBenefits=*/true);
  uint64_t SizePlain = 0, SizeBenefit = 0;
  for (size_t I = 0; I != MPlain.Functions.size(); ++I) {
    Plain.compile(MPlain.Functions[I]);
    Weighted.compile(MBenefit.Functions[I]);
    SizePlain += MPlain.Functions[I].instructionCount();
    SizeBenefit += MBenefit.Functions[I].instructionCount();
    expectVerifies(MBenefit.Functions[I]);
  }
  Interpreter SimA(MPlain), SimB(MBenefit);
  RunResult RA = SimA.run("main", {});
  RunResult RB = SimB.run("main", {});
  ASSERT_TRUE(RA.Ok);
  ASSERT_TRUE(RB.Ok);
  EXPECT_TRUE(RA.sameBehavior(RB));
  // Not required to be better on any one program, but never disastrous.
  EXPECT_LE(SizeBenefit, SizePlain * 5 / 4);
}

TEST(ProbabilisticCompiler, UntrainedModelDoesNothing) {
  InteractionAnalysis Empty;
  Module M = compileOrDie(ProgramSource);
  PhaseManager PM;
  ProbabilisticCompiler PC(PM, Empty);
  Function &F = functionNamed(M, "weigh");
  CompileStats S = PC.compile(F);
  // All start probabilities are zero: nothing is ever attempted.
  EXPECT_EQ(S.Attempted, 0u);
}

TEST(EntryExitFinalization, AddsActivationRecordCode) {
  Module M = compileOrDie(ProgramSource);
  PhaseManager PM;
  Function &F = functionNamed(M, "weigh");
  batchCompile(PM, F);
  size_t Before = F.instructionCount();
  size_t Rets = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts)
      Rets += (I.Opcode == Op::Ret);
  fixEntryExit(F);
  EXPECT_GT(F.instructionCount(), Before);
  fixEntryExit(F); // Idempotent.
  EXPECT_EQ(F.instructionCount(),
            Before + 1 /*prologue*/ + Rets /*one epilogue per ret*/);
  Interpreter Sim(M);
  RunResult R = Sim.run("main", {});
  EXPECT_TRUE(R.Ok) << R.Error;
}

} // namespace
