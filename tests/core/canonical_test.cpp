//===- canonical_test.cpp - Canonicalization tests -----------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Canonical.h"

#include "src/ir/Function.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

Function renameRegs(const Function &F, int Delta) {
  Function G = F;
  for (BasicBlock &B : G.Blocks)
    for (Rtl &I : B.Insts) {
      if (I.Dst.isReg())
        I.Dst = Operand::reg(I.Dst.getReg() + Delta);
      I.forEachUseOperand(
          [&](Operand &O) { O = Operand::reg(O.getReg() + Delta); });
    }
  return G;
}

/// The paper's Figure 5 loop body, parameterized by register names and
/// label number: sum += a[i] with pointer-style iteration.
Function figure5(RegNum R10, RegNum R12, RegNum R1, RegNum R9, RegNum R8,
                 int32_t Label) {
  Function F;
  F.Name = "fig5";
  Global unusedG; // Document: global id 0 = the array "a".
  (void)unusedG;
  BasicBlock Head(Label + 100);
  Head.Insts.push_back(rtl::mov(Operand::reg(R10), Operand::imm(0)));
  Head.Insts.push_back(rtl::lea(Operand::reg(R12), Operand::global(0)));
  Head.Insts.push_back(rtl::mov(Operand::reg(R1), Operand::reg(R12)));
  Head.Insts.push_back(rtl::binary(Op::Add, Operand::reg(R9),
                                   Operand::reg(R12),
                                   Operand::imm(4000)));
  BasicBlock Loop(Label);
  Loop.Insts.push_back(rtl::load(Operand::reg(R8), Operand::reg(R1), 0));
  Loop.Insts.push_back(rtl::binary(Op::Add, Operand::reg(R10),
                                   Operand::reg(R10), Operand::reg(R8)));
  Loop.Insts.push_back(rtl::binary(Op::Add, Operand::reg(R1),
                                   Operand::reg(R1), Operand::imm(4)));
  Loop.Insts.push_back(rtl::cmp(Operand::reg(R1), Operand::reg(R9)));
  Loop.Insts.push_back(rtl::branch(Cond::Lt, Label));
  BasicBlock Tail(Label + 200);
  Tail.Insts.push_back(rtl::ret(Operand::reg(R10)));
  F.Blocks.push_back(std::move(Head));
  F.Blocks.push_back(std::move(Loop));
  F.Blocks.push_back(std::move(Tail));
  F.recomputeCounters();
  return F;
}

TEST(Canonical, IdenticalFunctionsMatch) {
  Function A = figure5(10, 12, 1, 9, 8, 3);
  Function B = figure5(10, 12, 1, 9, 8, 3);
  EXPECT_EQ(canonicalize(A).Hash, canonicalize(B).Hash);
}

TEST(Canonical, PaperFigure5RegisterAndLabelRemapping) {
  // Figure 5(b) vs 5(c): same code modulo register numbers and labels —
  // "the same function instance is obtained after remapping".
  Function B = figure5(10, 12, 1, 9, 8, 3); // registers of Fig 5(b), L3
  Function C = figure5(11, 10, 1, 9, 8, 5); // registers of Fig 5(c), L5
  EXPECT_EQ(canonicalize(B).Hash, canonicalize(C).Hash);
  // And the exact canonical bytes agree, not just the hashes.
  EXPECT_EQ(canonicalize(B, true).Bytes, canonicalize(C, true).Bytes);
}

TEST(Canonical, UniformRenameMatches) {
  Function A = figure5(10, 12, 1, 9, 8, 3);
  Function B = renameRegs(A, 7);
  EXPECT_EQ(canonicalize(A).Hash, canonicalize(B).Hash);
}

TEST(Canonical, DifferentCodeDiffers) {
  Function A = figure5(10, 12, 1, 9, 8, 3);
  Function B = A;
  B.Blocks[1].Insts[2].Src[1] = Operand::imm(8); // Step 8 instead of 4.
  EXPECT_NE(canonicalize(A).Hash, canonicalize(B).Hash);
}

TEST(Canonical, InstructionOrderMatters) {
  // CRC is order sensitive — the reason the paper prefers it over a sum.
  Function A, B;
  A.addBlock();
  B.addBlock();
  RegNum R1 = 32, R2 = 33;
  A.Blocks[0].Insts.push_back(rtl::mov(Operand::reg(R1), Operand::imm(1)));
  A.Blocks[0].Insts.push_back(rtl::mov(Operand::reg(R2), Operand::imm(2)));
  A.Blocks[0].Insts.push_back(rtl::ret(Operand::reg(R1)));
  B.Blocks[0].Insts.push_back(rtl::mov(Operand::reg(R1), Operand::imm(2)));
  B.Blocks[0].Insts.push_back(rtl::mov(Operand::reg(R2), Operand::imm(1)));
  B.Blocks[0].Insts.push_back(rtl::ret(Operand::reg(R1)));
  EXPECT_NE(canonicalize(A).Hash, canonicalize(B).Hash);
  // Byte sums collide (same multiset of bytes once remapped names align),
  // demonstrating why the triple includes a CRC. (Not asserted: the sum
  // may or may not collide depending on encoding details.)
}

TEST(Canonical, HardwareVsPseudoRegistersDiffer) {
  // Register assignment must be visible in instance identity.
  Function A;
  A.addBlock();
  A.Blocks[0].Insts.push_back(rtl::mov(Operand::reg(32), Operand::imm(1)));
  A.Blocks[0].Insts.push_back(rtl::ret(Operand::reg(32)));
  Function B;
  B.addBlock();
  B.Blocks[0].Insts.push_back(rtl::mov(Operand::reg(0), Operand::imm(1)));
  B.Blocks[0].Insts.push_back(rtl::ret(Operand::reg(0)));
  EXPECT_NE(canonicalize(A).Hash, canonicalize(B).Hash);
}

TEST(Canonical, PhaseStateParticipates) {
  Function A;
  A.addBlock();
  A.Blocks[0].Insts.push_back(rtl::ret(Operand::imm(0)));
  Function B = A;
  B.State.RegAllocDone = true;
  EXPECT_NE(canonicalize(A).Hash, canonicalize(B).Hash);
}

TEST(Canonical, EmptyBlocksAreTransparent) {
  // Branching to an empty block is the same emitted code as branching to
  // the block it falls into.
  Function A;
  size_t A0 = A.addBlock(), A1 = A.addBlock(), A2 = A.addBlock();
  (void)A1; // Empty.
  RegNum R = A.makePseudo();
  A.Blocks[A0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  A.Blocks[A0].Insts.push_back(rtl::branch(Cond::Eq, A.Blocks[A1].Label));
  A.Blocks[A2].Insts.push_back(rtl::ret(Operand::none()));

  Function B;
  size_t B0 = B.addBlock(), B1 = B.addBlock();
  RegNum R2 = B.makePseudo();
  B.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R2), Operand::imm(0)));
  B.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, B.Blocks[B1].Label));
  B.Blocks[B1].Insts.push_back(rtl::ret(Operand::none()));

  EXPECT_EQ(canonicalize(A).Hash, canonicalize(B).Hash);
}

TEST(Canonical, TripleComponents) {
  Function A = figure5(10, 12, 1, 9, 8, 3);
  CanonicalForm CF = canonicalize(A, true);
  EXPECT_EQ(CF.Hash.InstCount, A.instructionCount());
  EXPECT_FALSE(CF.Bytes.empty());
  // Default mode omits the bytes.
  EXPECT_TRUE(canonicalize(A).Bytes.empty());
}

TEST(Canonical, ControlFlowHashIgnoresPayload) {
  Function A = figure5(10, 12, 1, 9, 8, 3);
  Function B = A;
  B.Blocks[1].Insts[2].Src[1] = Operand::imm(8); // Payload change.
  EXPECT_EQ(controlFlowHash(A), controlFlowHash(B));
  // Structural change: make the branch a jump (loses fall-through edge).
  Function C = A;
  C.Blocks[1].Insts.back() = rtl::jump(C.Blocks[1].Label);
  EXPECT_NE(controlFlowHash(A), controlFlowHash(C));
}

TEST(Canonical, HasherSpreads) {
  HashTripleHasher H;
  HashTriple A{1, 2, 3}, B{1, 2, 4};
  EXPECT_NE(H(A), H(B));
}

} // namespace
