//===- model_io_test.cpp - Interaction model persistence tests -------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Interaction.h"

#include "src/core/Compilers.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

InteractionAnalysis trainedModel() {
  Module M = compileOrDie(
      "int t[8]={2,7,1,8,2,8,1,8};\n"
      "int f(int n){int s=0;int i=0;while(i<n){s=s+t[i&7]*6;i=i+1;}"
      "return s;}\n"
      "int g(int a,int b){if(a>b)return a-b;return b-a;}\n");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  InteractionAnalysis IA;
  for (Function &F : M.Functions) {
    EnumerationResult R = E.enumerate(F);
    EXPECT_TRUE(R.complete());
    IA.addFunction(R);
  }
  return IA;
}

TEST(ModelIo, RoundTripIsExact) {
  InteractionAnalysis IA = trainedModel();
  std::string Text = IA.serialize();
  InteractionAnalysis Loaded;
  ASSERT_TRUE(Loaded.deserialize(Text));
  EXPECT_EQ(Loaded.functionCount(), IA.functionCount());
  for (int Y = 0; Y != NumPhases; ++Y) {
    PhaseId PY = phaseByIndex(Y);
    EXPECT_DOUBLE_EQ(Loaded.startProbability(PY), IA.startProbability(PY));
    EXPECT_DOUBLE_EQ(Loaded.averageBenefit(PY), IA.averageBenefit(PY));
    for (int X = 0; X != NumPhases; ++X) {
      PhaseId PX = phaseByIndex(X);
      EXPECT_DOUBLE_EQ(Loaded.enabling(PY, PX), IA.enabling(PY, PX));
      EXPECT_DOUBLE_EQ(Loaded.disabling(PY, PX), IA.disabling(PY, PX));
      EXPECT_DOUBLE_EQ(Loaded.independence(PY, PX),
                       IA.independence(PY, PX));
      EXPECT_EQ(Loaded.alwaysIndependent(PY, PX),
                IA.alwaysIndependent(PY, PX));
    }
  }
  // And the serialized forms agree byte for byte.
  EXPECT_EQ(Loaded.serialize(), Text);
}

TEST(ModelIo, RejectsMalformedInput) {
  InteractionAnalysis IA;
  EXPECT_FALSE(IA.deserialize(""));
  EXPECT_FALSE(IA.deserialize("not a model"));
  EXPECT_FALSE(IA.deserialize("pose-interaction-model v1\nfunctions x\n"));
  // Truncated body.
  std::string Text = trainedModel().serialize();
  EXPECT_FALSE(IA.deserialize(Text.substr(0, Text.size() / 2)));
}

TEST(ModelIo, LoadedModelDrivesTheCompiler) {
  InteractionAnalysis IA = trainedModel();
  InteractionAnalysis Loaded;
  ASSERT_TRUE(Loaded.deserialize(IA.serialize()));
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i*6;i=i+1;}return s;}");
  PhaseManager PM;
  ProbabilisticCompiler A(PM, IA), B(PM, Loaded);
  Module M2 = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i*6;i=i+1;}return s;}");
  CompileStats SA = A.compile(functionNamed(M, "f"));
  CompileStats SB = B.compile(functionNamed(M2, "f"));
  EXPECT_EQ(SA.Attempted, SB.Attempted);
  EXPECT_EQ(SA.ActiveSequence, SB.ActiveSequence);
}

} // namespace
