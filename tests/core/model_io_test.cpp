//===- model_io_test.cpp - Interaction model persistence tests -------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Interaction.h"

#include "src/core/Compilers.h"
#include "src/opt/PhaseManager.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

InteractionAnalysis trainedModel() {
  Module M = compileOrDie(
      "int t[8]={2,7,1,8,2,8,1,8};\n"
      "int f(int n){int s=0;int i=0;while(i<n){s=s+t[i&7]*6;i=i+1;}"
      "return s;}\n"
      "int g(int a,int b){if(a>b)return a-b;return b-a;}\n");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  InteractionAnalysis IA;
  for (Function &F : M.Functions) {
    EnumerationResult R = E.enumerate(F);
    EXPECT_TRUE(R.complete());
    IA.addFunction(R);
  }
  return IA;
}

TEST(ModelIo, RoundTripIsExact) {
  InteractionAnalysis IA = trainedModel();
  std::string Text = IA.serialize();
  InteractionAnalysis Loaded;
  ASSERT_TRUE(Loaded.deserialize(Text));
  EXPECT_EQ(Loaded.functionCount(), IA.functionCount());
  for (int Y = 0; Y != NumPhases; ++Y) {
    PhaseId PY = phaseByIndex(Y);
    EXPECT_DOUBLE_EQ(Loaded.startProbability(PY), IA.startProbability(PY));
    EXPECT_DOUBLE_EQ(Loaded.averageBenefit(PY), IA.averageBenefit(PY));
    for (int X = 0; X != NumPhases; ++X) {
      PhaseId PX = phaseByIndex(X);
      EXPECT_DOUBLE_EQ(Loaded.enabling(PY, PX), IA.enabling(PY, PX));
      EXPECT_DOUBLE_EQ(Loaded.disabling(PY, PX), IA.disabling(PY, PX));
      EXPECT_DOUBLE_EQ(Loaded.independence(PY, PX),
                       IA.independence(PY, PX));
      EXPECT_EQ(Loaded.alwaysIndependent(PY, PX),
                IA.alwaysIndependent(PY, PX));
    }
  }
  // And the serialized forms agree byte for byte.
  EXPECT_EQ(Loaded.serialize(), Text);
}

TEST(ModelIo, RejectsMalformedInput) {
  InteractionAnalysis IA;
  EXPECT_FALSE(IA.deserialize(""));
  EXPECT_FALSE(IA.deserialize("not a model"));
  EXPECT_FALSE(IA.deserialize("pose-interaction-model v1\nfunctions x\n"));
  // Truncated body.
  std::string Text = trainedModel().serialize();
  EXPECT_FALSE(IA.deserialize(Text.substr(0, Text.size() / 2)));
}

TEST(ModelIo, RejectsDuplicateRowIndex) {
  // A repeated row index means one row was silently zeroed and another
  // written twice; the loader must treat that as corruption, not data.
  std::string Text = trainedModel().serialize();
  size_t Row3 = Text.find("\nd2a 3 ");
  ASSERT_NE(Row3, std::string::npos);
  std::string Dup = Text;
  Dup[Row3 + 5] = '2'; // Now two "d2a 2" rows and no "d2a 3".
  InteractionAnalysis IA;
  EXPECT_FALSE(IA.deserialize(Dup));
}

TEST(ModelIo, RejectsTrailingGarbage) {
  std::string Text = trainedModel().serialize();
  InteractionAnalysis IA;
  ASSERT_TRUE(IA.deserialize(Text));
  EXPECT_FALSE(IA.deserialize(Text + "junk\n"));
  EXPECT_FALSE(IA.deserialize(Text + "0x1p-2\n"));
  // Extra values on a data row are garbage too.
  size_t Row = Text.find("\nind ");
  ASSERT_NE(Row, std::string::npos);
  size_t Eol = Text.find('\n', Row + 1);
  ASSERT_NE(Eol, std::string::npos);
  std::string Extra = Text;
  Extra.insert(Eol, " 0x1p-2");
  EXPECT_FALSE(IA.deserialize(Extra));
}

TEST(ModelIo, SingleByteCorruptionAlwaysRejected) {
  // Flip every byte to an alphabetic non-hex character: whatever field it
  // lands in (header keyword, row name, index digit, value, separator)
  // the strict parser must refuse the model rather than half-load it.
  std::string Text = trainedModel().serialize();
  InteractionAnalysis IA;
  for (size_t I = 0; I != Text.size(); ++I) {
    if (Text[I] == 'Z')
      continue;
    std::string Mutated = Text;
    Mutated[I] = 'Z';
    EXPECT_FALSE(IA.deserialize(Mutated)) << "byte offset " << I;
  }
}

TEST(ModelIo, TruncationAtEveryLineRejected) {
  // Byte-level prefixes ending mid-number can accidentally parse as a
  // shorter valid number, but a model cut at any line boundary is always
  // missing rows or sections and must be refused.
  std::string Text = trainedModel().serialize();
  InteractionAnalysis IA;
  for (size_t Eol = Text.find('\n'); Eol + 1 < Text.size();
       Eol = Text.find('\n', Eol + 1)) {
    EXPECT_FALSE(IA.deserialize(Text.substr(0, Eol + 1)))
        << "truncated after byte " << Eol;
  }
}

TEST(ModelIo, LoadedModelDrivesTheCompiler) {
  InteractionAnalysis IA = trainedModel();
  InteractionAnalysis Loaded;
  ASSERT_TRUE(Loaded.deserialize(IA.serialize()));
  Module M = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i*6;i=i+1;}return s;}");
  PhaseManager PM;
  ProbabilisticCompiler A(PM, IA), B(PM, Loaded);
  Module M2 = compileOrDie(
      "int f(int n){int s=0;int i=0;while(i<n){s=s+i*6;i=i+1;}return s;}");
  CompileStats SA = A.compile(functionNamed(M, "f"));
  CompileStats SB = B.compile(functionNamed(M2, "f"));
  EXPECT_EQ(SA.Attempted, SB.Attempted);
  EXPECT_EQ(SA.ActiveSequence, SB.ActiveSequence);
}

} // namespace
