//===- canonical_fastpath_test.cpp - Fast-path differential tests --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The canonicalization fast path (CanonicalScratch: dense remap arrays,
// one whole-buffer CRC) must be byte-for-byte indistinguishable from the
// reference implementation (std::map remapping, per-byte CRC) on every
// input either can see: real compiled workloads, register/label
// permutations of them, and seeded random functions covering every
// operand kind, empty blocks, and both register classes. One scratch is
// reused across every comparison, so any state leaking between calls
// shows up as a divergence.
//
//===----------------------------------------------------------------------===//

#include "src/core/Canonical.h"

#include "src/frontend/Compile.h"
#include "src/ir/Function.h"
#include "src/support/Rng.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

using namespace pose;
using namespace pose::testhelpers;

namespace {

/// Every function of every workload, once.
std::vector<Function> sampleFunctions() {
  std::vector<Function> Out;
  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    for (Function &F : M.Functions)
      Out.push_back(std::move(F));
  }
  return Out;
}

/// Asserts the fast path (through \p Scratch) and the scratch-free
/// wrapper both reproduce the reference implementation exactly, with and
/// without register remapping.
void expectFastMatchesReference(const Function &F, CanonicalScratch &Scratch,
                                const char *What) {
  for (const bool Remap : {true, false}) {
    const CanonicalForm Ref =
        canonicalizeReference(F, /*KeepBytes=*/true, Remap);
    const CanonicalForm Fast =
        canonicalize(F, Scratch, /*KeepBytes=*/true, Remap);
    EXPECT_EQ(Ref.Hash, Fast.Hash) << What << " remap=" << Remap;
    EXPECT_EQ(Ref.Bytes, Fast.Bytes) << What << " remap=" << Remap;
    const CanonicalForm Wrapper = canonicalize(F, /*KeepBytes=*/true, Remap);
    EXPECT_EQ(Ref.Hash, Wrapper.Hash) << What << " remap=" << Remap;
    EXPECT_EQ(Ref.Bytes, Wrapper.Bytes) << What << " remap=" << Remap;
  }
}

/// Class-preserving random register permutation (hardware and pseudo
/// permute within their own classes, as remapping expects).
Function permuteRegisters(const Function &F, Rng &R) {
  std::set<RegNum> Hardware, Pseudo;
  auto Note = [&](RegNum Reg) {
    (isHardwareReg(Reg) ? Hardware : Pseudo).insert(Reg);
  };
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts) {
      if (I.Dst.isReg())
        Note(I.Dst.getReg());
      I.forEachUsedReg(Note);
    }
  auto Permute = [&R](const std::set<RegNum> &Used) {
    std::vector<RegNum> From(Used.begin(), Used.end());
    std::vector<RegNum> To = From;
    for (size_t I = To.size(); I > 1; --I)
      std::swap(To[I - 1], To[R.below(I)]);
    std::map<RegNum, RegNum> Map;
    for (size_t I = 0; I != From.size(); ++I)
      Map[From[I]] = To[I];
    return Map;
  };
  std::map<RegNum, RegNum> Map = Permute(Hardware);
  std::map<RegNum, RegNum> PseudoMap = Permute(Pseudo);
  Map.insert(PseudoMap.begin(), PseudoMap.end());
  Function G = F;
  for (BasicBlock &B : G.Blocks)
    for (Rtl &I : B.Insts) {
      if (I.Dst.isReg())
        I.Dst = Operand::reg(Map.at(I.Dst.getReg()));
      I.forEachUseOperand(
          [&](Operand &O) { O = Operand::reg(Map.at(O.getReg())); });
    }
  return G;
}

/// Renames every block label to a scrambled number far outside the dense
/// range (the fast path must fall back to its sorted-pairs label table
/// and still match the reference byte for byte).
Function relabelBlocksHuge(const Function &F, Rng &R) {
  Function G = F;
  std::vector<int32_t> Old;
  for (const BasicBlock &B : G.Blocks)
    Old.push_back(B.Label);
  std::vector<int32_t> Scrambled = Old;
  for (size_t I = Scrambled.size(); I > 1; --I)
    std::swap(Scrambled[I - 1], Scrambled[R.below(I)]);
  const int32_t Base = 50'000'000 + static_cast<int32_t>(R.below(1'000));
  std::map<int32_t, int32_t> Map;
  for (size_t I = 0; I != Old.size(); ++I)
    Map[Scrambled[I]] = Base + static_cast<int32_t>(I) * 977;
  for (BasicBlock &B : G.Blocks) {
    B.Label = Map.at(B.Label);
    for (Rtl &I : B.Insts)
      for (Operand &S : I.Src)
        if (S.isLabel())
          S = Operand::label(Map.at(S.Value));
  }
  G.recomputeCounters();
  return G;
}

/// A seeded random function exercising everything the serializers handle:
/// every operand kind, hardware and pseudo registers (including sparse
/// pseudo numbers), conditional branches and jumps whose labels resolve
/// through empty blocks, calls with argument lists, and empty blocks
/// themselves.
Function randomFunction(Rng &R) {
  Function F;
  F.Name = "rand";
  F.ReturnsValue = R.below(2) == 0;
  const size_t NumSlots = 1 + R.below(3);
  for (size_t I = 0; I != NumSlots; ++I) {
    StackSlot S;
    S.Name = "s" + std::to_string(I);
    S.SizeWords = 1 + static_cast<int32_t>(R.below(4));
    S.IsArray = R.below(3) == 0;
    S.IsParam = I == 0;
    F.addSlot(S);
  }
  F.NumParams = 1;
  const size_t NumBlocks = 1 + R.below(6);
  for (size_t I = 0; I != NumBlocks; ++I)
    F.addBlock();

  auto RandReg = [&]() -> RegNum {
    if (R.below(2) == 0)
      return static_cast<RegNum>(R.below(FirstPseudoReg));
    // Sparse pseudo numbers stress the fast path's grow-on-demand map.
    return FirstPseudoReg + static_cast<RegNum>(R.below(4000));
  };
  auto RegOrImm = [&]() {
    return R.below(2) == 0
               ? Operand::reg(RandReg())
               : Operand::imm(static_cast<int32_t>(R.below(1000)) - 500);
  };
  auto RandLabel = [&]() {
    return Operand::label(F.Blocks[R.below(NumBlocks)].Label);
  };

  for (size_t BI = 0; BI != NumBlocks; ++BI) {
    BasicBlock &B = F.Blocks[BI];
    // A quarter of the blocks stay empty: labels pointing at them must
    // resolve through to the next emitted instruction.
    const size_t NumInsts = R.below(4) == 0 ? 0 : 1 + R.below(5);
    for (size_t II = 0; II != NumInsts; ++II) {
      Rtl I;
      switch (R.below(8)) {
      case 0:
        I.Opcode = Op::Mov;
        I.Dst = Operand::reg(RandReg());
        I.Src[0] = RegOrImm();
        break;
      case 1:
        I.Opcode = R.below(2) == 0 ? Op::Add : Op::Xor;
        I.Dst = Operand::reg(RandReg());
        I.Src[0] = Operand::reg(RandReg());
        I.Src[1] = RegOrImm();
        break;
      case 2:
        I.Opcode = Op::Lea;
        I.Dst = Operand::reg(RandReg());
        I.Src[0] = R.below(2) == 0
                       ? Operand::slot(static_cast<int32_t>(
                             R.below(NumSlots)))
                       : Operand::global(static_cast<int32_t>(R.below(4)));
        break;
      case 3:
        I.Opcode = Op::Load;
        I.Dst = Operand::reg(RandReg());
        I.Src[0] = Operand::reg(RandReg());
        I.Src[1] = Operand::imm(static_cast<int32_t>(R.below(16)));
        break;
      case 4:
        I.Opcode = Op::Store;
        I.Src[0] = Operand::reg(RandReg());
        I.Src[1] = Operand::imm(static_cast<int32_t>(R.below(16)));
        I.Src[2] = RegOrImm();
        break;
      case 5:
        I.Opcode = Op::Cmp;
        I.Src[0] = Operand::reg(RandReg());
        I.Src[1] = RegOrImm();
        break;
      case 6:
        I.Opcode = Op::Call;
        if (R.below(2) == 0)
          I.Dst = Operand::reg(RandReg());
        I.Src[0] = Operand::global(static_cast<int32_t>(R.below(4)));
        for (size_t A = R.below(5); A != 0; --A)
          I.Args.push_back(RegOrImm());
        break;
      default:
        I.Opcode = Op::Neg;
        I.Dst = Operand::reg(RandReg());
        I.Src[0] = Operand::reg(RandReg());
        break;
      }
      B.Insts.push_back(std::move(I));
    }
    // Terminators: branches and jumps whose labels point anywhere in the
    // function (including backwards and at empty blocks).
    const size_t T = R.below(4);
    if (T == 0) {
      Rtl J(Op::Jump);
      J.Src[0] = RandLabel();
      B.Insts.push_back(std::move(J));
    } else if (T == 1) {
      Rtl Br(Op::Branch);
      Br.CC = static_cast<Cond>(1 + R.below(10));
      Br.Src[0] = RandLabel();
      B.Insts.push_back(std::move(Br));
    } // else fall through.
  }
  Rtl Ret(Op::Ret);
  if (F.ReturnsValue)
    Ret.Src[0] = RegOrImm();
  F.Blocks.back().Insts.push_back(std::move(Ret));
  if (R.below(2) == 0)
    F.State.RegsAssigned = true;
  if (R.below(2) == 0)
    F.State.RegAllocDone = true;
  return F;
}

TEST(CanonicalFastPath, MatchesReferenceOnAllWorkloadFunctions) {
  CanonicalScratch Scratch;
  for (const Function &F : sampleFunctions())
    expectFastMatchesReference(F, Scratch, F.Name.c_str());
}

TEST(CanonicalFastPath, MatchesReferenceOnPermutedAndRelabeledFunctions) {
  CanonicalScratch Scratch;
  std::vector<Function> Fns = sampleFunctions();
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    Rng R(Seed);
    for (const Function &F : Fns) {
      const Function P = relabelBlocksHuge(permuteRegisters(F, R), R);
      expectFastMatchesReference(P, Scratch, F.Name.c_str());
      // The permutation must also still vanish under remapping on the
      // fast path, exactly as it does on the reference path.
      EXPECT_EQ(canonicalize(F, Scratch).Hash,
                canonicalize(P, Scratch).Hash)
          << "seed " << Seed << " fn " << F.Name;
    }
  }
}

TEST(CanonicalFastPath, MatchesReferenceOnSeededRandomFunctions) {
  CanonicalScratch Scratch;
  for (uint64_t Seed = 1; Seed <= 64; ++Seed) {
    Rng R(Seed);
    const Function F = randomFunction(R);
    expectFastMatchesReference(F, Scratch,
                               ("seed " + std::to_string(Seed)).c_str());
  }
}

TEST(CanonicalFastPath, ScratchReuseIsStateless) {
  // The same function canonicalized through a heavily reused scratch must
  // equal a fresh-scratch canonicalization: epochs fully isolate calls.
  std::vector<Function> Fns = sampleFunctions();
  ASSERT_FALSE(Fns.empty());
  CanonicalScratch Used;
  Rng R(11);
  for (int I = 0; I != 50; ++I)
    (void)canonicalize(randomFunction(R), Used, /*KeepBytes=*/false);
  for (const Function &F : Fns) {
    CanonicalScratch Fresh;
    const CanonicalForm A = canonicalize(F, Used, /*KeepBytes=*/true);
    const CanonicalForm B = canonicalize(F, Fresh, /*KeepBytes=*/true);
    EXPECT_EQ(A.Hash, B.Hash) << F.Name;
    EXPECT_EQ(A.Bytes, B.Bytes) << F.Name;
  }
}

TEST(CanonicalFastPath, WideCallArgCountIsNotTruncated) {
  // Regression for the serialized arg count: it was a uint8_t, so a call
  // with more than 255 arguments aliased one with (N mod 256). The count
  // is now a u32; the byte stream must grow by exactly one arg's encoding
  // per argument, with no discontinuity at 256.
  auto CallWith = [](size_t NumArgs) {
    Function F;
    F.Name = "caller";
    F.addBlock();
    Rtl C(Op::Call);
    C.Src[0] = Operand::global(0);
    for (size_t I = 0; I != NumArgs; ++I)
      C.Args.push_back(Operand::imm(7));
    F.Blocks[0].Insts.push_back(std::move(C));
    Rtl Ret(Op::Ret);
    F.Blocks[0].Insts.push_back(std::move(Ret));
    return F;
  };
  CanonicalScratch Scratch;
  const size_t L0 = canonicalize(CallWith(0), Scratch, true).Bytes.size();
  const size_t L1 = canonicalize(CallWith(1), Scratch, true).Bytes.size();
  const size_t PerArg = L1 - L0;
  ASSERT_GT(PerArg, 0u);
  const size_t L300 =
      canonicalize(CallWith(300), Scratch, true).Bytes.size();
  EXPECT_EQ(L300, L0 + 300 * PerArg);
  // 300 and 44 alias under a truncated 8-bit count; they must differ.
  EXPECT_NE(canonicalize(CallWith(300), Scratch).Hash,
            canonicalize(CallWith(44), Scratch).Hash);
  // And the fast path agrees with the reference on the wide form.
  expectFastMatchesReference(CallWith(300), Scratch, "call300");
}

} // namespace
