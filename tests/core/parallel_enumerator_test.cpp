//===- parallel_enumerator_test.cpp - Parallel vs sequential differentials -----===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The parallel engine's whole contract is "byte-identical to the
// sequential engine": node ids, edge order, every statistic, every
// diagnostic, the accounted memory and the stop reason, for any job
// count. This suite enforces that differentially — over every workload
// function under enumeration budgets, under paranoid comparison, in naive
// re-apply mode, and with injected verifier faults — and checks that the
// one documented deviation (node-granularity Deadline/Cancelled polling)
// still yields self-consistent partial DAGs.
//
//===----------------------------------------------------------------------===//

#include "src/core/Enumerator.h"

#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

EnumerationResult enumerateWithJobs(const Function &F, EnumeratorConfig Cfg,
                                    unsigned Jobs) {
  Cfg.Jobs = Jobs;
  PhaseManager PM;
  Enumerator E(PM, Cfg);
  return E.enumerate(F);
}

/// Field-by-field equality of two enumeration results. EXPECT (not
/// ASSERT) per field so one mismatch shows every divergent statistic.
void expectIdentical(const EnumerationResult &A, const EnumerationResult &B,
                     const std::string &What) {
  EXPECT_EQ(A.Stop, B.Stop) << What;
  EXPECT_EQ(A.Cyclic, B.Cyclic) << What;
  EXPECT_EQ(A.AttemptedPhases, B.AttemptedPhases) << What;
  EXPECT_EQ(A.PhaseApplications, B.PhaseApplications) << What;
  EXPECT_EQ(A.MaxActiveLength, B.MaxActiveLength) << What;
  EXPECT_EQ(A.HashCollisions, B.HashCollisions) << What;
  EXPECT_EQ(A.PredictedEdges, B.PredictedEdges) << What;
  EXPECT_EQ(A.ApproxMemoryBytes, B.ApproxMemoryBytes) << What;

  ASSERT_EQ(A.Nodes.size(), B.Nodes.size()) << What;
  for (size_t I = 0; I != A.Nodes.size(); ++I) {
    const DagNode &NA = A.Nodes[I];
    const DagNode &NB = B.Nodes[I];
    EXPECT_EQ(NA.Hash, NB.Hash) << What << " node " << I;
    EXPECT_EQ(NA.Level, NB.Level) << What << " node " << I;
    EXPECT_EQ(NA.CodeSize, NB.CodeSize) << What << " node " << I;
    EXPECT_EQ(NA.CfHash, NB.CfHash) << What << " node " << I;
    EXPECT_EQ(NA.ActiveMask, NB.ActiveMask) << What << " node " << I;
    EXPECT_EQ(NA.DormantMask, NB.DormantMask) << What << " node " << I;
    EXPECT_EQ(NA.AttemptedMask, NB.AttemptedMask) << What << " node " << I;
    EXPECT_EQ(NA.Weight, NB.Weight) << What << " node " << I;
    ASSERT_EQ(NA.Edges.size(), NB.Edges.size()) << What << " node " << I;
    for (size_t E = 0; E != NA.Edges.size(); ++E) {
      EXPECT_EQ(NA.Edges[E].Phase, NB.Edges[E].Phase)
          << What << " node " << I << " edge " << E;
      EXPECT_EQ(NA.Edges[E].To, NB.Edges[E].To)
          << What << " node " << I << " edge " << E;
    }
  }

  ASSERT_EQ(A.Levels.size(), B.Levels.size()) << What;
  for (size_t I = 0; I != A.Levels.size(); ++I) {
    EXPECT_EQ(A.Levels[I].Level, B.Levels[I].Level) << What << " level " << I;
    EXPECT_EQ(A.Levels[I].NewNodes, B.Levels[I].NewNodes)
        << What << " level " << I;
    EXPECT_EQ(A.Levels[I].ActiveSequences, B.Levels[I].ActiveSequences)
        << What << " level " << I;
    EXPECT_EQ(A.Levels[I].Attempted, B.Levels[I].Attempted)
        << What << " level " << I;
    EXPECT_EQ(A.Levels[I].Active, B.Levels[I].Active)
        << What << " level " << I;
  }

  ASSERT_EQ(A.Diagnostics.size(), B.Diagnostics.size()) << What;
  for (size_t I = 0; I != A.Diagnostics.size(); ++I) {
    EXPECT_EQ(A.Diagnostics[I].Phase, B.Diagnostics[I].Phase)
        << What << " diag " << I;
    EXPECT_EQ(A.Diagnostics[I].Func, B.Diagnostics[I].Func)
        << What << " diag " << I;
    EXPECT_EQ(A.Diagnostics[I].Message, B.Diagnostics[I].Message)
        << What << " diag " << I;
    EXPECT_EQ(A.Diagnostics[I].Application, B.Diagnostics[I].Application)
        << What << " diag " << I;
    EXPECT_EQ(A.Diagnostics[I].Injected, B.Diagnostics[I].Injected)
        << What << " diag " << I;
  }
}

/// Partial DAGs must still satisfy every structural invariant.
void expectSelfConsistent(const EnumerationResult &R) {
  for (const DagNode &N : R.Nodes) {
    uint64_t Sum = 0;
    for (const DagEdge &E : N.Edges) {
      ASSERT_LT(E.To, R.Nodes.size());
      EXPECT_LE(R.Nodes[E.To].Level, N.Level + 1);
      Sum += R.Nodes[E.To].Weight;
    }
    if (N.isLeaf()) {
      EXPECT_EQ(N.Weight, 1u);
    } else if (!R.Cyclic) {
      EXPECT_EQ(N.Weight, Sum);
    }
  }
}

/// Budgets that let small functions complete and deterministically stop
/// large ones (LevelBudget / NodeBudget are barrier-only conditions, so
/// the stopped prefix must also be byte-identical).
EnumeratorConfig cappedConfig() {
  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = 1'000;
  Cfg.MaxTotalNodes = 8'000;
  return Cfg;
}

TEST(ParallelEnumerator, WorkloadFunctionsIdenticalAcrossJobCounts) {
  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    for (Function &F : M.Functions) {
      EnumerationResult Seq = enumerateWithJobs(F, cappedConfig(), 1);
      for (unsigned Jobs : {2u, 4u, 8u}) {
        EnumerationResult Par = enumerateWithJobs(F, cappedConfig(), Jobs);
        expectIdentical(Seq, Par,
                        std::string(W.Name) + "/" + F.Name + " jobs=" +
                            std::to_string(Jobs));
      }
    }
  }
}

TEST(ParallelEnumerator, CompleteSpaceIdenticalAndComplete) {
  // A function whose space is exhaustively enumerable: both engines must
  // agree *and* report Complete (the budgets above may hide a parallel
  // engine that silently stops early).
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumerationResult Seq = enumerateWithJobs(F, {}, 1);
  ASSERT_EQ(Seq.Stop, StopReason::Complete);
  for (unsigned Jobs : {2u, 4u, 8u}) {
    EnumerationResult Par = enumerateWithJobs(F, {}, Jobs);
    EXPECT_EQ(Par.Stop, StopReason::Complete);
    expectIdentical(Seq, Par, "sum jobs=" + std::to_string(Jobs));
  }
}

TEST(ParallelEnumerator, ParanoidCompareIdentical) {
  // Paranoid mode keeps canonical bytes per node and counts collisions;
  // the parallel engine must route byte buffers through the barrier in
  // the same order.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.ParanoidCompare = true;
  EnumerationResult Seq = enumerateWithJobs(F, Cfg, 1);
  EXPECT_EQ(Seq.HashCollisions, 0u);
  EnumerationResult Par = enumerateWithJobs(F, Cfg, 4);
  expectIdentical(Seq, Par, "paranoid");

  const Workload *W = findWorkload("bitcount");
  ASSERT_NE(W, nullptr);
  Module MW = compileOrDie(W->Source);
  EnumeratorConfig Capped = cappedConfig();
  Capped.ParanoidCompare = true;
  for (Function &FW : MW.Functions) {
    EnumerationResult S = enumerateWithJobs(FW, Capped, 1);
    EnumerationResult P = enumerateWithJobs(FW, Capped, 4);
    expectIdentical(S, P, "paranoid " + FW.Name);
  }
}

TEST(ParallelEnumerator, NaiveReapplyIdentical) {
  // Naive mode replays phase prefixes instead of storing instances, so
  // PhaseApplications > AttemptedPhases — and both counters, plus the
  // path-based memory accounting, must agree across engines.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.NaiveReapply = true;
  EnumerationResult Seq = enumerateWithJobs(F, Cfg, 1);
  ASSERT_EQ(Seq.Stop, StopReason::Complete);
  EXPECT_GT(Seq.PhaseApplications, Seq.AttemptedPhases);
  for (unsigned Jobs : {2u, 4u}) {
    EnumerationResult Par = enumerateWithJobs(F, Cfg, Jobs);
    expectIdentical(Seq, Par, "naive jobs=" + std::to_string(Jobs));
  }
}

TEST(ParallelEnumerator, NoRegisterRemappingIdentical) {
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg = cappedConfig();
  Cfg.RemapRegisters = false;
  EnumerationResult Seq = enumerateWithJobs(F, Cfg, 1);
  EnumerationResult Par = enumerateWithJobs(F, Cfg, 4);
  expectIdentical(Seq, Par, "no-remap");
}

TEST(ParallelEnumerator, InjectedFaultsIdenticalAcrossJobCounts) {
  // Fault coordinates are per-phase application ordinals. The parallel
  // engine precomputes them in sequential frontier order, so the same
  // application must fail, the same edge must be pruned, and the same
  // diagnostic (with the same ordinal) must surface for any job count.
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("s:1,c:2,d:3", Plan));
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.VerifyIr = true;
  Cfg.Faults = &Plan;
  EnumerationResult Seq = enumerateWithJobs(F, Cfg, 1);
  EXPECT_EQ(Seq.Stop, StopReason::VerifierFailure);
  EXPECT_FALSE(Seq.Diagnostics.empty());
  for (unsigned Jobs : {2u, 4u, 8u}) {
    EnumerationResult Par = enumerateWithJobs(F, Cfg, Jobs);
    expectIdentical(Seq, Par, "faults jobs=" + std::to_string(Jobs));
  }
}

TEST(ParallelEnumerator, InjectedFaultsOnWorkloadIdentical) {
  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("c:5,i:2", Plan));
  const Workload *W = findWorkload("bitcount");
  ASSERT_NE(W, nullptr);
  Module M = compileOrDie(W->Source);
  EnumeratorConfig Cfg = cappedConfig();
  Cfg.VerifyIr = true;
  Cfg.Faults = &Plan;
  for (Function &F : M.Functions) {
    EnumerationResult Seq = enumerateWithJobs(F, Cfg, 1);
    EnumerationResult Par = enumerateWithJobs(F, Cfg, 4);
    expectIdentical(Seq, Par, "workload faults " + F.Name);
  }
}

TEST(ParallelEnumerator, MemoryBudgetStopIdentical) {
  // MemoryBudget is checked only at barriers with deterministic
  // accounting, so even this stop must be byte-identical.
  const Workload *W = findWorkload("sha");
  ASSERT_NE(W, nullptr);
  Module M = compileOrDie(W->Source);
  Function &F = functionNamed(M, "sha_transform");
  EnumeratorConfig Cfg;
  Cfg.MaxMemoryBytes = 50'000;
  EnumerationResult Seq = enumerateWithJobs(F, Cfg, 1);
  EXPECT_EQ(Seq.Stop, StopReason::MemoryBudget);
  EnumerationResult Par = enumerateWithJobs(F, Cfg, 4);
  expectIdentical(Seq, Par, "memory budget");
}

TEST(ParallelEnumerator, PreCancelledTokenStopsWithPartialResult) {
  // Deadline/Cancelled are polled at node granularity by workers (the
  // documented deviation): the stop reason and self-consistency are
  // guaranteed, the partial DAG may be smaller than sequential.
  StopToken Token;
  Token.requestStop();
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.Stop = &Token;
  EnumerationResult R = enumerateWithJobs(F, Cfg, 4);
  EXPECT_EQ(R.Stop, StopReason::Cancelled);
  EXPECT_FALSE(R.complete());
  EXPECT_GE(R.Nodes.size(), 1u);
  expectSelfConsistent(R);
}

TEST(ParallelEnumerator, DeadlineStopsMidRunWithConsistentResult) {
  const Workload *W = findWorkload("sha");
  ASSERT_NE(W, nullptr);
  Module M = compileOrDie(W->Source);
  Function &F = functionNamed(M, "sha_transform");
  EnumeratorConfig Cfg;
  Cfg.DeadlineMs = 1;
  EnumerationResult R = enumerateWithJobs(F, Cfg, 4);
  EXPECT_EQ(R.Stop, StopReason::Deadline);
  EXPECT_FALSE(R.complete());
  EXPECT_GE(R.Nodes.size(), 1u);
  expectSelfConsistent(R);
}

TEST(ParallelEnumerator, IndependencePruningFallsBackToSequential) {
  // UseIndependencePruning is intrinsically sequential within a level;
  // Jobs > 1 must silently use the sequential engine, not change results.
  Module M = compileOrDie(SumSource);
  Function &F = functionNamed(M, "f");
  EnumeratorConfig Cfg;
  Cfg.UseIndependencePruning = true;
  for (int X = 0; X != NumPhases; ++X)
    for (int Y = 0; Y != NumPhases; ++Y)
      Cfg.TrainedIndependence[X][Y] = false;
  EnumerationResult Seq = enumerateWithJobs(F, Cfg, 1);
  EnumerationResult Par = enumerateWithJobs(F, Cfg, 8);
  expectIdentical(Seq, Par, "independence fallback");
}

} // namespace
