//===- enumerator_test.cpp - Exhaustive enumeration tests ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/Enumerator.h"

#include "src/core/SpaceStats.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

#include <set>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

EnumerationResult enumerateFn(Module &M, const std::string &Name,
                              EnumeratorConfig Cfg = {}) {
  PhaseManager PM;
  Enumerator E(PM, Cfg);
  return E.enumerate(functionNamed(M, Name));
}

TEST(Enumerator, TrivialFunctionTinySpace) {
  Module M = compileOrDie("int f() { return 3; }");
  EnumerationResult R = enumerateFn(M, "f");
  EXPECT_TRUE(R.complete());
  EXPECT_FALSE(R.Cyclic);
  // mov t,3 ; ret t — instruction selection collapses to ret 3; evaluation
  // order has nothing to do. A handful of instances at most.
  EXPECT_GE(R.Nodes.size(), 2u);
  EXPECT_LE(R.Nodes.size(), 6u);
  EXPECT_GE(R.MaxActiveLength, 1u);
}

TEST(Enumerator, CompletesOnLoopFunction) {
  Module M = compileOrDie(SumSource);
  EnumerationResult R = enumerateFn(M, "f");
  EXPECT_TRUE(R.complete());
  EXPECT_FALSE(R.Cyclic);
  EXPECT_GT(R.Nodes.size(), 10u);
  EXPECT_GT(R.leafCount(), 0u);
  EXPECT_LT(R.leafCount(), R.Nodes.size());
  // Far fewer distinct instances than attempted phases (the paper's core
  // observation).
  EXPECT_GT(R.AttemptedPhases, R.Nodes.size());
}

TEST(Enumerator, DeterministicAcrossRuns) {
  Module M1 = compileOrDie(SumSource);
  Module M2 = compileOrDie(SumSource);
  EnumerationResult A = enumerateFn(M1, "f");
  EnumerationResult B = enumerateFn(M2, "f");
  ASSERT_EQ(A.Nodes.size(), B.Nodes.size());
  EXPECT_EQ(A.AttemptedPhases, B.AttemptedPhases);
  EXPECT_EQ(A.MaxActiveLength, B.MaxActiveLength);
  for (size_t I = 0; I != A.Nodes.size(); ++I) {
    EXPECT_EQ(A.Nodes[I].Hash, B.Nodes[I].Hash);
    EXPECT_EQ(A.Nodes[I].Edges.size(), B.Nodes[I].Edges.size());
    EXPECT_EQ(A.Nodes[I].Weight, B.Nodes[I].Weight);
  }
}

TEST(Enumerator, ParanoidModeSeesNoCollisions) {
  Module M = compileOrDie(SumSource);
  EnumeratorConfig Cfg;
  Cfg.ParanoidCompare = true;
  EnumerationResult R = enumerateFn(M, "f", Cfg);
  EXPECT_TRUE(R.complete());
  // The paper: "we have never encountered an instance" of a triple
  // collision. Neither must we.
  EXPECT_EQ(R.HashCollisions, 0u);
}

TEST(Enumerator, WeightsAreConsistent) {
  Module M = compileOrDie(SumSource);
  EnumerationResult R = enumerateFn(M, "f");
  for (const DagNode &N : R.Nodes) {
    if (N.isLeaf()) {
      EXPECT_EQ(N.Weight, 1u);
      continue;
    }
    uint64_t Sum = 0;
    for (const DagEdge &E : N.Edges)
      Sum += R.Nodes[E.To].Weight;
    EXPECT_EQ(N.Weight, Sum);
  }
  // Root weight = number of distinct maximal active sequences; at least
  // the number of leaves.
  EXPECT_GE(R.Nodes[0].Weight, R.leafCount());
}

TEST(Enumerator, MasksPartitionPhases) {
  Module M = compileOrDie(SumSource);
  EnumerationResult R = enumerateFn(M, "f");
  for (const DagNode &N : R.Nodes) {
    // Active and dormant never overlap.
    EXPECT_EQ(N.ActiveMask & N.DormantMask, 0);
    // Every phase is resolved one way or the other on expanded nodes.
    EXPECT_EQ(N.ActiveMask | N.DormantMask, (1u << NumPhases) - 1);
    // Edges match the active mask.
    uint16_t EdgeMask = 0;
    for (const DagEdge &E : N.Edges)
      EdgeMask |= static_cast<uint16_t>(1u << static_cast<int>(E.Phase));
    EXPECT_EQ(EdgeMask, N.ActiveMask);
  }
}

TEST(Enumerator, EdgesPointToValidNodesAndLevels) {
  Module M = compileOrDie(SumSource);
  EnumerationResult R = enumerateFn(M, "f");
  for (const DagNode &N : R.Nodes)
    for (const DagEdge &E : N.Edges) {
      ASSERT_LT(E.To, R.Nodes.size());
      // BFS level of the child is at most parent level + 1.
      EXPECT_LE(R.Nodes[E.To].Level, N.Level + 1);
    }
}

TEST(Enumerator, BudgetStopsSearch) {
  Module M = compileOrDie(
      "int f(int a,int b,int c){int x=a*b+c;int y=b*c+a;int z=a*c+b;"
      "int w;if(a>b)w=x*y;else w=y*z;while(w>a){w=w-b;a=a+1;}"
      "return w+x+y+z;}");
  EnumeratorConfig Tight;
  Tight.MaxTotalNodes = 20;
  EnumerationResult R = enumerateFn(M, "f", Tight);
  EXPECT_FALSE(R.complete());
  EXPECT_GT(R.Nodes.size(), 20u);
}

TEST(Enumerator, NaiveModeSameDagMoreWork) {
  Module M1 = compileOrDie(SumSource);
  Module M2 = compileOrDie(SumSource);
  EnumerationResult Fast = enumerateFn(M1, "f");
  EnumeratorConfig Naive;
  Naive.NaiveReapply = true;
  EnumerationResult Slow = enumerateFn(M2, "f", Naive);
  // Identical space…
  ASSERT_EQ(Fast.Nodes.size(), Slow.Nodes.size());
  EXPECT_EQ(Fast.AttemptedPhases, Slow.AttemptedPhases);
  for (size_t I = 0; I != Fast.Nodes.size(); ++I)
    EXPECT_EQ(Fast.Nodes[I].Hash, Slow.Nodes[I].Hash);
  // …at several times the optimizer invocations (Figure 6: "at least by
  // a factor of 5 to 10" on real functions; the toy function is smaller,
  // so merely require a strict increase).
  EXPECT_EQ(Fast.PhaseApplications, Fast.AttemptedPhases);
  EXPECT_GT(Slow.PhaseApplications, Slow.AttemptedPhases);
}

TEST(Enumerator, LeafInstancesPreserveSemantics) {
  // Materialize every leaf by replaying a path from the root, then check
  // behaviour differentially against the unoptimized function.
  Module M = compileOrDie(SumSource);
  PhaseManager PM;
  EnumerationResult R = enumerateFn(M, "f");
  const Function &Root = functionNamed(M, "f");
  Interpreter Sim(M);
  RunResult Base = Sim.run("f", {9});
  ASSERT_TRUE(Base.Ok) << Base.Error;

  // Find a path (phase sequence) to every leaf via BFS over edges.
  std::vector<int> From(R.Nodes.size(), -1);
  std::vector<PhaseId> Via(R.Nodes.size(), PhaseId::BranchChaining);
  std::vector<uint32_t> Work{0};
  std::set<uint32_t> Visited{0};
  while (!Work.empty()) {
    uint32_t Id = Work.back();
    Work.pop_back();
    for (const DagEdge &E : R.Nodes[Id].Edges)
      if (Visited.insert(E.To).second) {
        From[E.To] = static_cast<int>(Id);
        Via[E.To] = E.Phase;
        Work.push_back(E.To);
      }
  }
  size_t Checked = 0;
  for (uint32_t Id = 0; Id != R.Nodes.size(); ++Id) {
    if (!R.Nodes[Id].isLeaf())
      continue;
    std::vector<PhaseId> Path;
    for (int Cur = static_cast<int>(Id); Cur != 0; Cur = From[Cur])
      Path.push_back(Via[Cur]);
    Function Instance = Root;
    for (size_t K = Path.size(); K-- > 0;)
      EXPECT_TRUE(PM.attempt(Path[K], Instance));
    EXPECT_EQ(canonicalize(Instance).Hash, R.Nodes[Id].Hash);
    Sim.overrideFunction("f", &Instance);
    RunResult After = Sim.run("f", {9});
    ASSERT_TRUE(After.Ok) << After.Error;
    EXPECT_TRUE(Base.sameBehavior(After));
    Sim.overrideFunction("f", nullptr);
    ++Checked;
  }
  EXPECT_GT(Checked, 0u);
}

TEST(SpaceStatsTest, Table3RowFields) {
  Module M = compileOrDie(SumSource);
  EnumerationResult R = enumerateFn(M, "f");
  SpaceStats S = computeSpaceStats(functionNamed(M, "f"), R);
  EXPECT_EQ(S.Name, "f");
  EXPECT_GT(S.Insts, 10u);
  EXPECT_GT(S.Blocks, 2u);
  EXPECT_GT(S.Branches, 1u);
  EXPECT_EQ(S.Loops, 1u);
  EXPECT_TRUE(S.complete());
  EXPECT_EQ(S.FnInstances, R.Nodes.size());
  EXPECT_EQ(S.LeafInstances, R.leafCount());
  EXPECT_GE(S.LeafCodeSizeMax, S.LeafCodeSizeMin);
  EXPECT_GT(S.LeafCodeSizeMin, 0u);
  EXPECT_GE(S.DistinctControlFlows, 1u);
  EXPECT_LE(S.DistinctControlFlows, S.FnInstances);
  EXPECT_GE(S.codeSizeDiffPercent(), 0.0);
}

TEST(SpaceStatsTest, NaiveSpaceSize) {
  EXPECT_EQ(naiveSpaceSize(0), 0u);
  EXPECT_EQ(naiveSpaceSize(1), 15u);
  EXPECT_EQ(naiveSpaceSize(2), 15u + 225u);
  EXPECT_EQ(naiveSpaceSize(32), UINT64_MAX); // 15^32 saturates.
}

} // namespace
