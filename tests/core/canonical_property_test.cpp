//===- canonical_property_test.cpp - Canonicalization property tests -----------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-based check of the Section 4.2.1 claim: instance identity is
// invariant under any renaming of registers (within their hardware/pseudo
// classes) and any relabeling of basic blocks — and under *nothing else*:
// any change to an actual instruction changes the triple. Permutations
// are driven by the deterministic Rng over real compiled functions, so
// failures reproduce from the printed seed.
//
//===----------------------------------------------------------------------===//

#include "src/core/Canonical.h"

#include "src/frontend/Compile.h"
#include "src/ir/Printer.h"
#include "src/support/Rng.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

using namespace pose;
using namespace pose::testhelpers;

namespace {

/// Collects every register the function mentions, split by class.
void collectRegs(const Function &F, std::set<RegNum> &Hardware,
                 std::set<RegNum> &Pseudo) {
  auto Note = [&](RegNum R) {
    (isHardwareReg(R) ? Hardware : Pseudo).insert(R);
  };
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts) {
      if (I.Dst.isReg())
        Note(I.Dst.getReg());
      I.forEachUsedReg(Note);
    }
}

/// A random bijection of \p Used onto itself (Fisher-Yates over the
/// sorted element list, so identical seeds give identical permutations).
std::map<RegNum, RegNum> permutationOf(const std::set<RegNum> &Used,
                                       Rng &R) {
  std::vector<RegNum> From(Used.begin(), Used.end());
  std::vector<RegNum> To = From;
  for (size_t I = To.size(); I > 1; --I)
    std::swap(To[I - 1], To[R.below(I)]);
  std::map<RegNum, RegNum> Map;
  for (size_t I = 0; I != From.size(); ++I)
    Map[From[I]] = To[I];
  return Map;
}

/// Applies a register permutation (class-preserving by construction of
/// the maps) to every operand.
Function permuteRegisters(const Function &F, Rng &R) {
  std::set<RegNum> Hardware, Pseudo;
  collectRegs(F, Hardware, Pseudo);
  std::map<RegNum, RegNum> Map = permutationOf(Hardware, R);
  std::map<RegNum, RegNum> PseudoMap = permutationOf(Pseudo, R);
  Map.insert(PseudoMap.begin(), PseudoMap.end());
  Function G = F;
  for (BasicBlock &B : G.Blocks)
    for (Rtl &I : B.Insts) {
      if (I.Dst.isReg())
        I.Dst = Operand::reg(Map.at(I.Dst.getReg()));
      I.forEachUseOperand(
          [&](Operand &O) { O = Operand::reg(Map.at(O.getReg())); });
    }
  return G;
}

/// Renames every block label to a fresh number (scrambled order, offset
/// past everything the function uses) and rewrites label operands.
Function relabelBlocks(const Function &F, Rng &R) {
  Function G = F;
  std::vector<int32_t> Old;
  for (const BasicBlock &B : G.Blocks)
    Old.push_back(B.Label);
  std::vector<int32_t> Scrambled = Old;
  for (size_t I = Scrambled.size(); I > 1; --I)
    std::swap(Scrambled[I - 1], Scrambled[R.below(I)]);
  int32_t Base = 1'000'000 + static_cast<int32_t>(R.below(1'000));
  std::map<int32_t, int32_t> Map;
  for (size_t I = 0; I != Old.size(); ++I)
    Map[Scrambled[I]] = Base + static_cast<int32_t>(I);
  for (BasicBlock &B : G.Blocks) {
    B.Label = Map.at(B.Label);
    for (Rtl &I : B.Insts)
      for (Operand &S : I.Src)
        if (S.isLabel())
          S = Operand::label(Map.at(S.Value));
  }
  G.recomputeCounters();
  return G;
}

/// Mutates one real instruction detail chosen by \p R; returns false when
/// the function offers nothing safely mutable.
bool mutateOneInstruction(Function &F, Rng &R) {
  // Gather candidate mutations: every immediate operand, every binary
  // opcode, every conditional branch.
  struct Site {
    size_t Block, Inst;
    int Kind; // 0 = imm bump, 1 = opcode swap, 2 = branch cond flip
    int Src;
  };
  std::vector<Site> Sites;
  for (size_t BI = 0; BI != F.Blocks.size(); ++BI)
    for (size_t II = 0; II != F.Blocks[BI].Insts.size(); ++II) {
      const Rtl &I = F.Blocks[BI].Insts[II];
      for (int S = 0; S != 3; ++S)
        if (I.Src[S].isImm())
          Sites.push_back({BI, II, 0, S});
      if (I.Opcode == Op::Add || I.Opcode == Op::Sub)
        Sites.push_back({BI, II, 1, 0});
      if (I.Opcode == Op::Branch && I.CC == Cond::Lt)
        Sites.push_back({BI, II, 2, 0});
    }
  if (Sites.empty())
    return false;
  const Site &S = Sites[R.below(Sites.size())];
  Rtl &I = F.Blocks[S.Block].Insts[S.Inst];
  switch (S.Kind) {
  case 0:
    I.Src[S.Src] = Operand::imm(I.Src[S.Src].Value + 1);
    break;
  case 1:
    I.Opcode = I.Opcode == Op::Add ? Op::Sub : Op::Add;
    break;
  default:
    I.CC = Cond::Ge;
    break;
  }
  return true;
}

/// Every function of every workload, once.
std::vector<Function> sampleFunctions() {
  std::vector<Function> Out;
  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    for (Function &F : M.Functions)
      Out.push_back(std::move(F));
  }
  return Out;
}

TEST(CanonicalProperty, RenamingIsInvariantOverManySeeds) {
  std::vector<Function> Fns = sampleFunctions();
  ASSERT_FALSE(Fns.empty());
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed);
    for (const Function &F : Fns) {
      Function P = relabelBlocks(permuteRegisters(F, R), R);
      CanonicalForm A = canonicalize(F, /*KeepBytes=*/true);
      CanonicalForm B = canonicalize(P, /*KeepBytes=*/true);
      EXPECT_EQ(A.Hash, B.Hash) << "seed " << Seed << " fn " << F.Name;
      // Exact byte equality, not just the triple: the permutation must
      // vanish entirely under remapping.
      EXPECT_EQ(A.Bytes, B.Bytes) << "seed " << Seed << " fn " << F.Name;
    }
  }
}

TEST(CanonicalProperty, AnyInstructionMutationChangesTheTriple) {
  std::vector<Function> Fns = sampleFunctions();
  size_t Mutated = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed);
    for (const Function &F : Fns) {
      Function M = F;
      if (!mutateOneInstruction(M, R))
        continue;
      ++Mutated;
      EXPECT_NE(canonicalize(F).Hash, canonicalize(M).Hash)
          << "seed " << Seed << " fn " << F.Name << "\n"
          << printFunction(M);
    }
  }
  // The workloads are real programs: nearly all functions must have
  // offered a mutable site.
  EXPECT_GT(Mutated, 8 * 40u);
}

TEST(CanonicalProperty, MutationAfterRenamingStillDetected) {
  // Compose both properties: a renamed-then-mutated instance must differ
  // from the original (renaming cannot mask a real change).
  std::vector<Function> Fns = sampleFunctions();
  Rng R(99);
  for (const Function &F : Fns) {
    Function P = relabelBlocks(permuteRegisters(F, R), R);
    if (!mutateOneInstruction(P, R))
      continue;
    EXPECT_NE(canonicalize(F).Hash, canonicalize(P).Hash) << F.Name;
  }
}

TEST(CanonicalProperty, RemapAblationSeesRegisterNames) {
  // With RemapRegisters off, a nontrivial pseudo-register permutation is
  // visible — the ablation measurably loses pruning power (bench_ablation
  // quantifies it; this pins the mechanism).
  std::vector<Function> Fns = sampleFunctions();
  size_t Differ = 0, Tried = 0;
  Rng R(7);
  for (const Function &F : Fns) {
    std::set<RegNum> Hardware, Pseudo;
    collectRegs(F, Hardware, Pseudo);
    if (Pseudo.size() < 4)
      continue;
    Function P = permuteRegisters(F, R);
    ++Tried;
    // Remapping on: always equal.
    EXPECT_EQ(canonicalize(F).Hash, canonicalize(P).Hash) << F.Name;
    // Remapping off: equal only if the permutation happened to be the
    // identity on this function, so over many functions most must differ.
    if (canonicalize(F, false, false).Hash !=
        canonicalize(P, false, false).Hash)
      ++Differ;
  }
  ASSERT_GT(Tried, 20u);
  EXPECT_GT(Differ, Tried / 2);
}

} // namespace
