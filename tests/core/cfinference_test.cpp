//===- cfinference_test.cpp - CF-class dynamic-count inference tests -----------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/core/CfInference.h"

#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

const char *ProgramSource =
    "int t[16] = {5,3,8,1,9,2,7,4,6,0,11,13,12,10,15,14};\n"
    "int weigh(int n) {\n"
    "  int s = 0; int i = 0;\n"
    "  while (i < n) { if (t[i] % 2 == 0) s = s + t[i] * 3; i = i + 1; }\n"
    "  return s;\n"
    "}\n"
    "int main() { out(weigh(16)); out(weigh(7)); return weigh(12); }\n";

TEST(Profiling, BlockCountsMatchExecution) {
  Module M = compileOrDie(ProgramSource);
  Interpreter Sim(M);
  Sim.setProfileFunction("weigh");
  RunResult R = Sim.run("main", {});
  ASSERT_TRUE(R.Ok) << R.Error;
  const Function &F = functionNamed(M, "weigh");
  ASSERT_EQ(R.BlockCounts.size(), F.Blocks.size());
  // Entry block executes once per call: three calls from main.
  EXPECT_EQ(R.BlockCounts[0], 3u);
  // The frequencies weighted by block sizes must reconstruct the
  // function's share of the dynamic count exactly.
  uint64_t InFunction = 0;
  for (size_t B = 0; B != F.Blocks.size(); ++B)
    InFunction += R.BlockCounts[B] * F.Blocks[B].Insts.size();
  EXPECT_LT(InFunction, R.DynamicInsts);
  EXPECT_GT(InFunction, 0u);
}

TEST(Profiling, DisabledByDefault) {
  Module M = compileOrDie(ProgramSource);
  Interpreter Sim(M);
  RunResult R = Sim.run("main", {});
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.BlockCounts.empty());
}

TEST(CfInference, InferredCountsAreExact) {
  // The paper's Section 7 claim, validated instance by instance: inferred
  // dynamic counts must equal fully simulated ones.
  Module M = compileOrDie(ProgramSource);
  const Function Root = functionNamed(M, "weigh");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult R = E.enumerate(Root);
  ASSERT_TRUE(R.complete());
  DagPaths Paths(R);
  CfCountEvaluator Eval(M, "main", "weigh", Root, PM);

  Interpreter Sim(M);
  size_t Checked = 0;
  for (uint32_t Id = 0; Id != R.Nodes.size(); ++Id) {
    CfCountEvaluator::Count C = Eval.evaluate(R, Paths, Id);
    ASSERT_TRUE(C.Valid) << "node " << Id;
    // Ground truth: simulate this exact instance.
    Function Inst = Paths.materialize(Root, PM, Id);
    Sim.overrideFunction("weigh", &Inst);
    RunResult Truth = Sim.run("main", {});
    Sim.overrideFunction("weigh", nullptr);
    ASSERT_TRUE(Truth.Ok);
    EXPECT_EQ(C.Dynamic, Truth.DynamicInsts) << "node " << Id;
    ++Checked;
  }
  EXPECT_EQ(Checked, R.Nodes.size());
  // The whole point: far fewer simulations than instances.
  EXPECT_LT(Eval.simulations(), R.Nodes.size() / 4);
  EXPECT_GT(Eval.simulations(), 0u);
}

TEST(DagPathsTest, PathsReplayToMatchingHashes) {
  Module M = compileOrDie(ProgramSource);
  const Function Root = functionNamed(M, "weigh");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult R = E.enumerate(Root);
  DagPaths Paths(R);
  for (uint32_t Id = 0; Id != R.Nodes.size(); ++Id) {
    Function Inst = Paths.materialize(Root, PM, Id);
    EXPECT_EQ(canonicalize(Inst).Hash, R.Nodes[Id].Hash) << "node " << Id;
    EXPECT_EQ(Paths.pathTo(Id).size(), R.Nodes[Id].Level)
        << "BFS paths are shortest";
  }
  EXPECT_EQ(Paths.sequenceTo(0), "");
}

} // namespace
