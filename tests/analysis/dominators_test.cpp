//===- dominators_test.cpp - Dominator analysis tests ------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Dominators.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

/// B0 -> {B1, B2} -> B3 diamond.
Function makeDiamond() {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  RegNum R = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B3].Label));
  F.Blocks[B2].Insts.push_back(rtl::mov(Operand::reg(R), Operand::imm(2)));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::none()));
  return F;
}

TEST(Dominators, Diamond) {
  Function F = makeDiamond();
  Cfg C = Cfg::build(F);
  Dominators D(F, C);
  EXPECT_TRUE(D.dominates(0, 0));
  EXPECT_TRUE(D.dominates(0, 1));
  EXPECT_TRUE(D.dominates(0, 2));
  EXPECT_TRUE(D.dominates(0, 3));
  EXPECT_FALSE(D.dominates(1, 3)); // Join reachable around either arm.
  EXPECT_FALSE(D.dominates(2, 3));
  EXPECT_TRUE(D.dominates(3, 3));
  EXPECT_FALSE(D.dominates(3, 0));
}

TEST(Dominators, LinearChain) {
  Function F;
  F.addBlock();
  F.addBlock();
  F.addBlock();
  F.Blocks[2].Insts.push_back(rtl::ret(Operand::none()));
  Cfg C = Cfg::build(F);
  Dominators D(F, C);
  EXPECT_TRUE(D.dominates(0, 2));
  EXPECT_TRUE(D.dominates(1, 2));
  EXPECT_FALSE(D.dominates(2, 1));
}

TEST(Dominators, UnreachableBlockExcluded) {
  Function F;
  size_t B0 = F.addBlock();
  size_t B1 = F.addBlock(); // Unreachable: B0 jumps over it.
  size_t B2 = F.addBlock();
  F.Blocks[B0].Insts.push_back(rtl::jump(F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B2].Label));
  F.Blocks[B2].Insts.push_back(rtl::ret(Operand::none()));
  Cfg C = Cfg::build(F);
  Dominators D(F, C);
  EXPECT_TRUE(D.isReachable(B0));
  EXPECT_FALSE(D.isReachable(B1));
  EXPECT_TRUE(D.isReachable(B2));
  // B2's dominators must not be poisoned by the unreachable predecessor.
  EXPECT_TRUE(D.dominates(0, 2));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  // B0 -> B1(header) -> B2(body) -> B1, B1 -> B3(exit)
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  (void)B0;
  RegNum R = F.makePseudo();
  F.Blocks[B1].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B1].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B3].Label));
  F.Blocks[B2].Insts.push_back(rtl::jump(F.Blocks[B1].Label));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::none()));
  Cfg C = Cfg::build(F);
  Dominators D(F, C);
  EXPECT_TRUE(D.dominates(1, 2));
  EXPECT_TRUE(D.dominates(1, 3));
  EXPECT_FALSE(D.dominates(2, 1));
}

} // namespace
