//===- dependence_test.cpp - Intra-block dependence tests -----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/DependenceDag.h"

#include "src/ir/Function.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

bool mustPrecede(const std::vector<std::set<size_t>> &Deps, size_t A,
                 size_t B) {
  return Deps[B].count(A) > 0;
}

TEST(DependenceDag, RawWarWaw) {
  BasicBlock B(0);
  RegNum X = 32, Y = 33;
  B.Insts.push_back(rtl::mov(Operand::reg(X), Operand::imm(1)));      // 0
  B.Insts.push_back(rtl::binary(Op::Add, Operand::reg(Y),
                                Operand::reg(X), Operand::imm(2)));   // 1 RAW
  B.Insts.push_back(rtl::mov(Operand::reg(X), Operand::imm(9)));      // 2 WAR+WAW
  auto Deps = blockDependences(B);
  EXPECT_TRUE(mustPrecede(Deps, 0, 1));  // RAW on x.
  EXPECT_TRUE(mustPrecede(Deps, 1, 2));  // WAR: 1 reads x before 2 writes.
  EXPECT_TRUE(mustPrecede(Deps, 0, 2));  // WAW on x.
}

TEST(DependenceDag, IndependentChainsUnordered) {
  BasicBlock B(0);
  B.Insts.push_back(rtl::mov(Operand::reg(32), Operand::imm(1))); // 0
  B.Insts.push_back(rtl::mov(Operand::reg(33), Operand::imm(2))); // 1
  auto Deps = blockDependences(B);
  EXPECT_FALSE(mustPrecede(Deps, 0, 1));
  EXPECT_FALSE(mustPrecede(Deps, 1, 0));
}

TEST(DependenceDag, ConditionCodes) {
  BasicBlock B(0);
  B.Insts.push_back(rtl::cmp(Operand::reg(32), Operand::imm(0))); // 0
  B.Insts.push_back(rtl::mov(Operand::reg(33), Operand::imm(1))); // 1 free
  B.Insts.push_back(rtl::branch(Cond::Eq, 5));                    // 2
  auto Deps = blockDependences(B);
  EXPECT_TRUE(mustPrecede(Deps, 0, 2)); // Branch needs the compare.
  // The terminator also pins everything before it.
  EXPECT_TRUE(mustPrecede(Deps, 1, 2));
  // But the mov is not tied to the compare.
  EXPECT_FALSE(mustPrecede(Deps, 0, 1));
}

TEST(DependenceDag, MemoryOrdering) {
  BasicBlock B(0);
  RegNum A = 32, V = 33;
  B.Insts.push_back(rtl::load(Operand::reg(V), Operand::reg(A), 0));  // 0
  B.Insts.push_back(rtl::load(Operand::reg(34), Operand::reg(A), 1)); // 1
  B.Insts.push_back(rtl::store(Operand::reg(A), 2, Operand::reg(V))); // 2
  B.Insts.push_back(rtl::load(Operand::reg(35), Operand::reg(A), 3)); // 3
  auto Deps = blockDependences(B);
  // Loads may reorder among themselves…
  EXPECT_FALSE(mustPrecede(Deps, 0, 1));
  // …but never across a store, in either direction.
  EXPECT_TRUE(mustPrecede(Deps, 0, 2));
  EXPECT_TRUE(mustPrecede(Deps, 1, 2));
  EXPECT_TRUE(mustPrecede(Deps, 2, 3));
}

TEST(DependenceDag, CallsAreMemoryBarriers) {
  BasicBlock B(0);
  B.Insts.push_back(rtl::load(Operand::reg(32), Operand::reg(40), 0)); // 0
  B.Insts.push_back(rtl::call(Operand::none(), 0, {}));                // 1
  B.Insts.push_back(rtl::load(Operand::reg(33), Operand::reg(40), 0)); // 2
  auto Deps = blockDependences(B);
  EXPECT_TRUE(mustPrecede(Deps, 0, 1));
  EXPECT_TRUE(mustPrecede(Deps, 1, 2));
}

} // namespace
