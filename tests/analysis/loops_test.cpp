//===- loops_test.cpp - Natural loop detection tests --------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Loops.h"

#include "src/analysis/Dominators.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

LoopInfo analyze(const Function &F) {
  Cfg C = Cfg::build(F);
  Dominators D(F, C);
  return LoopInfo(F, C, D);
}

TEST(Loops, NoLoops) {
  Function F;
  F.addBlock();
  F.Blocks[0].Insts.push_back(rtl::ret(Operand::none()));
  EXPECT_EQ(analyze(F).count(), 0u);
}

TEST(Loops, SimpleWhile) {
  // B0 -> B1(header: test) -> B2(body) -> B1; B1 -> B3(exit)
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  (void)B0;
  RegNum R = F.makePseudo();
  F.Blocks[B1].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B1].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B3].Label));
  F.Blocks[B2].Insts.push_back(rtl::jump(F.Blocks[B1].Label));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::none()));

  LoopInfo LI = analyze(F);
  ASSERT_EQ(LI.count(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, 1);
  EXPECT_EQ(L.Latches, (std::vector<int>{2}));
  EXPECT_EQ(L.Blocks, (std::vector<int>{1, 2}));
  EXPECT_EQ(L.Depth, 1);
}

TEST(Loops, SelfLoop) {
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  (void)B0;
  RegNum R = F.makePseudo();
  F.Blocks[B1].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[B1].Insts.push_back(rtl::branch(Cond::Ne, F.Blocks[B1].Label));
  F.Blocks[B2].Insts.push_back(rtl::ret(Operand::none()));
  LoopInfo LI = analyze(F);
  ASSERT_EQ(LI.count(), 1u);
  EXPECT_EQ(LI.loops()[0].Header, 1);
  EXPECT_EQ(LI.loops()[0].Blocks, (std::vector<int>{1}));
}

TEST(Loops, NestedLoopsInnermostFirst) {
  // B0 -> B1(outer hdr) -> B2(inner hdr) -> B3(inner body) -> B2
  //       B2 -> B4(outer latch) -> B1 ; B1 -> B5(exit)
  Function F;
  for (int I = 0; I < 6; ++I)
    F.addBlock();
  RegNum R = F.makePseudo();
  auto Cmp = [&]() { return rtl::cmp(Operand::reg(R), Operand::imm(0)); };
  F.Blocks[1].Insts.push_back(Cmp());
  F.Blocks[1].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[5].Label));
  F.Blocks[2].Insts.push_back(Cmp());
  F.Blocks[2].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[4].Label));
  F.Blocks[3].Insts.push_back(rtl::jump(F.Blocks[2].Label));
  F.Blocks[4].Insts.push_back(rtl::jump(F.Blocks[1].Label));
  F.Blocks[5].Insts.push_back(rtl::ret(Operand::none()));

  LoopInfo LI = analyze(F);
  ASSERT_EQ(LI.count(), 2u);
  // Innermost first: the loop headed at B2.
  EXPECT_EQ(LI.loops()[0].Header, 2);
  EXPECT_EQ(LI.loops()[0].Depth, 2);
  EXPECT_EQ(LI.loops()[1].Header, 1);
  EXPECT_EQ(LI.loops()[1].Depth, 1);
  // Outer loop contains the inner blocks.
  EXPECT_TRUE(LI.loops()[1].contains(2));
  EXPECT_TRUE(LI.loops()[1].contains(3));
  EXPECT_TRUE(LI.loops()[1].contains(4));
  EXPECT_FALSE(LI.loops()[0].contains(4));
}

TEST(Loops, TwoBackEdgesOneLoop) {
  // Two latches to one header form a single natural loop.
  Function F;
  for (int I = 0; I < 5; ++I)
    F.addBlock();
  RegNum R = F.makePseudo();
  F.Blocks[1].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(0)));
  F.Blocks[1].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[4].Label));
  F.Blocks[2].Insts.push_back(rtl::cmp(Operand::reg(R), Operand::imm(1)));
  F.Blocks[2].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[1].Label));
  F.Blocks[3].Insts.push_back(rtl::jump(F.Blocks[1].Label));
  F.Blocks[4].Insts.push_back(rtl::ret(Operand::none()));
  LoopInfo LI = analyze(F);
  ASSERT_EQ(LI.count(), 1u);
  EXPECT_EQ(LI.loops()[0].Latches.size(), 2u);
  EXPECT_EQ(LI.loops()[0].Blocks, (std::vector<int>{1, 2, 3}));
}

} // namespace
