//===- liveness_test.cpp - Liveness analysis tests ---------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/analysis/Liveness.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

TEST(Liveness, StraightLine) {
  // r32 = 1; r33 = r32 + 2; ret r33
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo(), B = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(1)));
  I.push_back(rtl::binary(Op::Add, Operand::reg(B), Operand::reg(A),
                          Operand::imm(2)));
  I.push_back(rtl::ret(Operand::reg(B)));

  Cfg C = Cfg::build(F);
  Liveness LV(F, C);
  EXPECT_FALSE(LV.liveIn(0).test(A));
  EXPECT_FALSE(LV.liveIn(0).test(B));
  EXPECT_FALSE(LV.liveOut(0).any());

  std::vector<BitVector> After = LV.liveAfterEach(F, 0);
  EXPECT_TRUE(After[0].test(A));  // A live after its def.
  EXPECT_FALSE(After[1].test(A)); // A dead after last use.
  EXPECT_TRUE(After[1].test(B));
}

TEST(Liveness, AcrossLoop) {
  // B0: r32=0          (accumulator)
  // B1: r32=r32+1; cmp r32?10; branch Lt -> B1
  // B2: ret r32
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  RegNum A = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::mov(Operand::reg(A), Operand::imm(0)));
  F.Blocks[B1].Insts.push_back(rtl::binary(Op::Add, Operand::reg(A),
                                           Operand::reg(A),
                                           Operand::imm(1)));
  F.Blocks[B1].Insts.push_back(rtl::cmp(Operand::reg(A), Operand::imm(10)));
  F.Blocks[B1].Insts.push_back(rtl::branch(Cond::Lt, F.Blocks[B1].Label));
  F.Blocks[B2].Insts.push_back(rtl::ret(Operand::reg(A)));

  Cfg C = Cfg::build(F);
  Liveness LV(F, C);
  EXPECT_TRUE(LV.liveOut(B0).test(A));
  EXPECT_TRUE(LV.liveIn(B1).test(A));
  EXPECT_TRUE(LV.liveOut(B1).test(A));
  EXPECT_TRUE(LV.liveIn(B2).test(A));
  EXPECT_FALSE(LV.liveOut(B2).test(A));
}

TEST(Liveness, ConditionCodeTracked) {
  // cmp r32?0 ; branch — IC must be live between them.
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock();
  RegNum A = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::mov(Operand::reg(A), Operand::imm(1)));
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(A), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B1].Label));
  F.Blocks[B1].Insts.push_back(rtl::ret(Operand::none()));

  Cfg C = Cfg::build(F);
  Liveness LV(F, C);
  std::vector<BitVector> After = LV.liveAfterEach(F, B0);
  EXPECT_TRUE(After[1].test(LV.icIndex()));  // IC live after cmp.
  EXPECT_FALSE(After[2].test(LV.icIndex())); // Dead after branch.
  EXPECT_FALSE(After[0].test(LV.icIndex()));
}

TEST(Liveness, CallArgumentsAreUses) {
  Function F;
  F.addBlock();
  RegNum A = F.makePseudo();
  auto &I = F.Blocks[0].Insts;
  I.push_back(rtl::mov(Operand::reg(A), Operand::imm(9)));
  I.push_back(rtl::call(Operand::none(), 0, {Operand::reg(A)}));
  I.push_back(rtl::ret(Operand::none()));

  Cfg C = Cfg::build(F);
  Liveness LV(F, C);
  std::vector<BitVector> After = LV.liveAfterEach(F, 0);
  EXPECT_TRUE(After[0].test(A));
  EXPECT_FALSE(After[1].test(A));
}

TEST(Liveness, DiamondMerge) {
  // Value defined on both arms of a diamond, used at the join.
  Function F;
  size_t B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
         B3 = F.addBlock();
  RegNum P = F.makePseudo(), V = F.makePseudo();
  F.Blocks[B0].Insts.push_back(rtl::mov(Operand::reg(P), Operand::imm(1)));
  F.Blocks[B0].Insts.push_back(rtl::cmp(Operand::reg(P), Operand::imm(0)));
  F.Blocks[B0].Insts.push_back(rtl::branch(Cond::Eq, F.Blocks[B2].Label));
  F.Blocks[B1].Insts.push_back(rtl::mov(Operand::reg(V), Operand::imm(1)));
  F.Blocks[B1].Insts.push_back(rtl::jump(F.Blocks[B3].Label));
  F.Blocks[B2].Insts.push_back(rtl::mov(Operand::reg(V), Operand::imm(2)));
  F.Blocks[B3].Insts.push_back(rtl::ret(Operand::reg(V)));

  Cfg C = Cfg::build(F);
  Liveness LV(F, C);
  EXPECT_TRUE(LV.liveOut(B1).test(V));
  EXPECT_TRUE(LV.liveOut(B2).test(V));
  EXPECT_FALSE(LV.liveIn(B1).test(V)); // Defined before use on each arm.
  EXPECT_FALSE(LV.liveOut(B0).test(V));
}

} // namespace
