//===- fuzz_test.cpp - Random-program differential fuzzing ---------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Generates random (terminating, trap-free by construction where
// possible) MC programs and checks that random legal phase sequences —
// and full enumeration on the smaller ones — preserve behaviour. This
// complements the hand-written differential tests with shapes no human
// would write.
//
//===----------------------------------------------------------------------===//

#include "src/core/DagPaths.h"
#include "src/core/Enumerator.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "src/support/Rng.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

/// Random MC program generator. Loops are always bounded counting loops
/// over depth-indexed counters that are never assignment targets (so they
/// terminate), divisions guard their divisors with |1, and arrays are
/// indexed modulo their size, so generated programs are trap-free.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Src.clear();
    NumGlobals = 2 + static_cast<int>(R.below(3));
    for (int I = 0; I != NumGlobals; ++I) {
      Src += "int g" + std::to_string(I) + " = " +
             std::to_string(R.range(-50, 50)) + ";\n";
    }
    Src += "int arr[8] = {" + std::to_string(R.range(0, 9));
    for (int I = 1; I != 8; ++I)
      Src += "," + std::to_string(R.range(0, 9));
    Src += "};\n";

    NumFuncs = 1 + static_cast<int>(R.below(3));
    for (int I = 0; I != NumFuncs; ++I)
      genFunction(I);

    Src += "int main() {\n";
    for (int I = 0; I != NumFuncs; ++I)
      Src += "  out(f" + std::to_string(I) + "(" +
             std::to_string(R.range(-5, 20)) + ", " +
             std::to_string(R.range(-5, 20)) + "));\n";
    for (int I = 0; I != NumGlobals; ++I)
      Src += "  out(g" + std::to_string(I) + ");\n";
    Src += "  return 0;\n}\n";
    return Src;
  }

private:
  Rng R;
  std::string Src;
  int NumGlobals = 0;
  int NumFuncs = 0;
  int LoopDepth = 0;  // Counters v0..v2 belong to loop levels.

  /// Readable scalar: parameters, the six locals, or a global.
  std::string readVar() {
    int Pick = static_cast<int>(R.below(8 + NumGlobals));
    if (Pick == 0)
      return "a";
    if (Pick == 1)
      return "b";
    if (Pick < 8)
      return "v" + std::to_string(Pick - 2);
    return "g" + std::to_string(Pick - 8);
  }

  /// Writable scalar: never a loop counter (v0..v2), which guarantees
  /// loop termination.
  std::string writeVar() {
    int Pick = static_cast<int>(R.below(5 + NumGlobals));
    if (Pick == 0)
      return "a";
    if (Pick == 1)
      return "b";
    if (Pick < 5)
      return "v" + std::to_string(Pick + 1); // v3..v5
    return "g" + std::to_string(Pick - 5);
  }

  std::string expr(int Depth) {
    switch (R.below(Depth > 3 ? 2 : 7)) {
    case 0:
      return std::to_string(R.range(-99, 99));
    case 1:
      return readVar();
    case 2: {
      static const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
      return "(" + expr(Depth + 1) + " " + Ops[R.below(6)] + " " +
             expr(Depth + 1) + ")";
    }
    case 3: {
      // Guarded division/remainder: divisor forced nonzero via |1.
      const char *Op = R.below(2) ? "/" : "%";
      return "(" + expr(Depth + 1) + " " + Op + " ((" + expr(Depth + 1) +
             " | 1)))";
    }
    case 4: {
      static const char *Shifts[] = {"<<", ">>", ">>>"};
      return "(" + expr(Depth + 1) + " " + Shifts[R.below(3)] + " " +
             std::to_string(R.below(31)) + ")";
    }
    case 5:
      return "arr[(" + expr(Depth + 1) + ") & 7]";
    default: {
      static const char *Rels[] = {"<", "<=", "==", "!=", ">", ">="};
      return "(" + expr(Depth + 1) + " " + Rels[R.below(6)] + " " +
             expr(Depth + 1) + ")";
    }
    }
  }

  void statement(int Indent, int Depth) {
    std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    switch (R.below(Depth > 2 ? 2 : 6)) {
    case 0:
      Src += Pad + writeVar() + " = " + expr(0) + ";\n";
      return;
    case 1:
      Src += Pad + "arr[(" + expr(1) + ") & 7] = " + expr(0) + ";\n";
      return;
    case 2: {
      Src += Pad + "if (" + expr(0) + ") {\n";
      block(Indent + 1, Depth + 1);
      if (R.below(2)) {
        Src += Pad + "} else {\n";
        block(Indent + 1, Depth + 1);
      }
      Src += Pad + "}\n";
      return;
    }
    case 3: {
      if (LoopDepth >= 3) {
        Src += Pad + writeVar() + " = " + expr(0) + ";\n";
        return;
      }
      // Bounded counting loop over the depth-indexed counter.
      std::string I = "v" + std::to_string(LoopDepth);
      Src += Pad + "for (" + I + " = 0; " + I + " < " +
             std::to_string(3 + R.below(8)) + "; " + I + " = " + I +
             " + 1) {\n";
      ++LoopDepth;
      block(Indent + 1, Depth + 1);
      --LoopDepth;
      Src += Pad + "}\n";
      return;
    }
    case 4:
      if (LoopDepth > 0 && R.below(4) == 0) {
        Src += Pad + (R.below(2) ? "break;\n" : "continue;\n");
        return;
      }
      Src += Pad + writeVar() + " = " + expr(0) + ";\n";
      return;
    default:
      Src += Pad + "out(" + expr(0) + ");\n";
      return;
    }
  }

  void block(int Indent, int Depth) {
    int N = 1 + static_cast<int>(R.below(3));
    for (int I = 0; I != N; ++I)
      statement(Indent, Depth);
  }

  void genFunction(int Index) {
    LoopDepth = 0;
    Src += "int f" + std::to_string(Index) + "(int a, int b) {\n";
    for (int V = 0; V != 6; ++V)
      Src += "  int v" + std::to_string(V) + " = " +
             std::to_string(R.range(-9, 9)) + ";\n";
    block(1, 0);
    Src += "  return " + expr(0) + ";\n}\n";
  }
};

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomProgramsSurvivePhaseStorms) {
  const int Seed = GetParam();
  ProgramGenerator Gen(static_cast<uint64_t>(Seed) * 40503 + 9);
  std::string Source = Gen.generate();
  CompileResult CR = compileMC(Source);
  ASSERT_TRUE(CR.ok()) << Source << "\n" << CR.diagText();
  Module &M = CR.M;
  ASSERT_EQ(verifyModule(M), "");

  Interpreter Sim(M);
  RunResult Base = Sim.run("main", {});
  // Generated programs are trap-free by construction; overflowing ops
  // wrap, divisions are guarded, indices masked.
  ASSERT_TRUE(Base.Ok) << Base.Error << "\n" << Source;

  PhaseManager PM;
  Rng R(static_cast<uint64_t>(Seed) + 777);
  for (Function &F : M.Functions) {
    int Prev = -1;
    for (int Step = 0; Step != 30; ++Step) {
      int P = static_cast<int>(R.below(NumPhases));
      if (P == Prev)
        continue;
      PhaseId Id = phaseByIndex(P);
      if (!PM.isLegal(Id, F))
        continue;
      if (PM.attempt(Id, F))
        Prev = P;
      ASSERT_EQ(verifyFunction(F), "")
          << "seed " << Seed << " phase " << phaseCode(Id) << "\n"
          << printFunction(F) << "\n"
          << Source;
    }
  }
  RunResult After = Sim.run("main", {});
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_TRUE(Base.sameBehavior(After)) << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 24));

TEST(FuzzEnumerate, SmallRandomFunctionsEnumerateAndPreserve) {
  // Full enumeration + leaf differential check on small random programs.
  for (int Seed = 100; Seed != 106; ++Seed) {
    ProgramGenerator Gen(static_cast<uint64_t>(Seed));
    std::string Source = Gen.generate();
    CompileResult CR = compileMC(Source);
    ASSERT_TRUE(CR.ok()) << Source;
    Module &M = CR.M;
    Interpreter Sim(M);
    RunResult Base = Sim.run("main", {});
    ASSERT_TRUE(Base.Ok) << Base.Error;

    PhaseManager PM;
    EnumeratorConfig Cfg;
    Cfg.MaxLevelSequences = 30'000;
    Cfg.ParanoidCompare = true;
    Enumerator E(PM, Cfg);
    for (Function &F : M.Functions) {
      if (F.instructionCount() > 80)
        continue;
      EnumerationResult R = E.enumerate(F);
      EXPECT_EQ(R.HashCollisions, 0u);
      if (!R.complete())
        continue;
      DagPaths Paths(R);
      for (uint32_t Id = 0; Id != R.Nodes.size(); ++Id) {
        if (!R.Nodes[Id].isLeaf())
          continue;
        Function Inst = Paths.materialize(F, PM, Id);
        Sim.overrideFunction(F.Name, &Inst);
        RunResult After = Sim.run("main", {});
        Sim.overrideFunction(F.Name, nullptr);
        ASSERT_TRUE(After.Ok) << After.Error;
        EXPECT_TRUE(Base.sameBehavior(After))
            << "seed " << Seed << " function " << F.Name << " node " << Id
            << "\n"
            << printFunction(Inst);
      }
    }
  }
}

} // namespace
