//===- expr_conformance_test.cpp - Expression semantics conformance -------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Dual-evaluator conformance: random expression trees are emitted as MC
// source *and* evaluated host-side with explicit int32 wrap-around
// semantics while being generated. The compiled-and-simulated result must
// match the host result — before optimization, and after batch
// optimization. This pins down the semantics of every operator through
// the whole pipeline (lexer, parser, codegen, phases, simulator).
//
//===----------------------------------------------------------------------===//

#include "src/core/Compilers.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "src/support/Rng.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

/// Builds a random expression and its reference value simultaneously.
class ExprBuilder {
public:
  explicit ExprBuilder(uint64_t Seed) : R(Seed) {}

  /// Known variable environment: a..d with fixed values.
  static constexpr int32_t VarValues[4] = {7, -13, 100000, 0x5A5A5A5A};

  struct Result {
    std::string Text;
    int32_t Value;
  };

  Result build(int Depth) {
    switch (R.below(Depth > 4 ? 2 : 9)) {
    case 0: {
      int32_t V = static_cast<int32_t>(R.range(-1000, 1000));
      if (V < 0) // MC has no unary-minus literals inside all contexts…
        return {"(0 - " + std::to_string(-static_cast<int64_t>(V)) + ")",
                V};
      return {std::to_string(V), V};
    }
    case 1: {
      int I = static_cast<int>(R.below(4));
      return {std::string(1, static_cast<char>('a' + I)), VarValues[I]};
    }
    case 2: { // + - * & | ^
      Result L = build(Depth + 1), Rt = build(Depth + 1);
      uint32_t UL = static_cast<uint32_t>(L.Value);
      uint32_t UR = static_cast<uint32_t>(Rt.Value);
      switch (R.below(6)) {
      case 0:
        return {"(" + L.Text + " + " + Rt.Text + ")",
                static_cast<int32_t>(UL + UR)};
      case 1:
        return {"(" + L.Text + " - " + Rt.Text + ")",
                static_cast<int32_t>(UL - UR)};
      case 2:
        return {"(" + L.Text + " * " + Rt.Text + ")",
                static_cast<int32_t>(UL * UR)};
      case 3:
        return {"(" + L.Text + " & " + Rt.Text + ")", L.Value & Rt.Value};
      case 4:
        return {"(" + L.Text + " | " + Rt.Text + ")", L.Value | Rt.Value};
      default:
        return {"(" + L.Text + " ^ " + Rt.Text + ")", L.Value ^ Rt.Value};
      }
    }
    case 3: { // Division/remainder with a guarded divisor.
      Result L = build(Depth + 1), Rt = build(Depth + 1);
      int32_t Div = Rt.Value | 1;
      // INT32_MIN / -1 still traps; dodge by the same guard the
      // simulator uses in reverse: force positive divisors.
      std::string DivText = "((" + Rt.Text + " | 1) & 2147483647 | 1)";
      Div = (Div & INT32_MAX) | 1;
      if (R.below(2))
        return {"(" + L.Text + " / " + DivText + ")", L.Value / Div};
      return {"(" + L.Text + " % " + DivText + ")", L.Value % Div};
    }
    case 4: { // Shifts with literal amounts.
      Result L = build(Depth + 1);
      int Amt = static_cast<int>(R.below(31));
      uint32_t UL = static_cast<uint32_t>(L.Value);
      switch (R.below(3)) {
      case 0:
        return {"(" + L.Text + " << " + std::to_string(Amt) + ")",
                static_cast<int32_t>(UL << Amt)};
      case 1:
        return {"(" + L.Text + " >> " + std::to_string(Amt) + ")",
                L.Value >> Amt};
      default:
        return {"(" + L.Text + " >>> " + std::to_string(Amt) + ")",
                static_cast<int32_t>(UL >> Amt)};
      }
    }
    case 5: { // Relational.
      Result L = build(Depth + 1), Rt = build(Depth + 1);
      switch (R.below(6)) {
      case 0:
        return {"(" + L.Text + " < " + Rt.Text + ")", L.Value < Rt.Value};
      case 1:
        return {"(" + L.Text + " <= " + Rt.Text + ")",
                L.Value <= Rt.Value};
      case 2:
        return {"(" + L.Text + " > " + Rt.Text + ")", L.Value > Rt.Value};
      case 3:
        return {"(" + L.Text + " >= " + Rt.Text + ")",
                L.Value >= Rt.Value};
      case 4:
        return {"(" + L.Text + " == " + Rt.Text + ")",
                L.Value == Rt.Value};
      default:
        return {"(" + L.Text + " != " + Rt.Text + ")",
                L.Value != Rt.Value};
      }
    }
    case 6: { // Logical with short circuit.
      Result L = build(Depth + 1), Rt = build(Depth + 1);
      if (R.below(2))
        return {"(" + L.Text + " && " + Rt.Text + ")",
                (L.Value != 0 && Rt.Value != 0) ? 1 : 0};
      return {"(" + L.Text + " || " + Rt.Text + ")",
              (L.Value != 0 || Rt.Value != 0) ? 1 : 0};
    }
    case 7: { // Unary.
      Result L = build(Depth + 1);
      switch (R.below(3)) {
      case 0:
        return {"(0 - " + L.Text + ")",
                static_cast<int32_t>(0u - static_cast<uint32_t>(L.Value))};
      case 1:
        return {"(~" + L.Text + ")", ~L.Value};
      default:
        return {"(!" + L.Text + ")", L.Value == 0 ? 1 : 0};
      }
    }
    default: { // Conditional via arithmetic selection (no ?: in MC).
      Result C = build(Depth + 2), L = build(Depth + 2);
      int32_t Sel = C.Value != 0 ? L.Value : 0;
      return {"((" + C.Text + " != 0) * " + L.Text + ")",
              static_cast<int32_t>(
                  static_cast<uint32_t>(C.Value != 0 ? 1 : 0) *
                  static_cast<uint32_t>(L.Value))};
      (void)Sel;
    }
    }
  }

private:
  Rng R;
};

class ExprConformanceTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprConformanceTest, CompiledMatchesHostSemantics) {
  ExprBuilder B(static_cast<uint64_t>(GetParam()) * 1299709 + 31);
  PhaseManager PM;
  for (int Case = 0; Case != 8; ++Case) {
    ExprBuilder::Result E = B.build(0);
    std::string Src = "int f(int a, int b, int c, int d) { return " +
                      E.Text + "; }";
    Module M = compileOrDie(Src);
    Interpreter Sim(M);
    std::vector<int32_t> Args(ExprBuilder::VarValues,
                              ExprBuilder::VarValues + 4);
    RunResult Naive = Sim.run("f", Args);
    ASSERT_TRUE(Naive.Ok) << Naive.Error << "\n" << Src;
    EXPECT_EQ(Naive.ReturnValue, E.Value) << Src;

    // The whole optimizer must preserve the value.
    Function &F = functionNamed(M, "f");
    batchCompile(PM, F);
    RunResult Opt = Sim.run("f", Args);
    ASSERT_TRUE(Opt.Ok) << Opt.Error << "\n" << Src;
    EXPECT_EQ(Opt.ReturnValue, E.Value) << Src << "\n" << printFunction(F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprConformanceTest,
                         ::testing::Range(0, 12));

} // namespace
