//===- exhaustive_differential_test.cpp - Every leaf vs. the root --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The promotion of the sampled semantic spot checks: for every MC workload
// function whose space enumerates completely under the test budget, EVERY
// DAG leaf is behavior-compared against the unoptimized root across the
// seeded equivalence vector set — the same seed, arena, and root-derived
// step limits posec --equiv uses, but checked through the interpreter
// directly rather than through behavior digests, so this suite would catch
// a digest bug as well as a phase bug.
//
//===----------------------------------------------------------------------===//

#include "src/core/DagPaths.h"

#include "src/core/Enumerator.h"
#include "src/frontend/Compile.h"
#include "src/ir/Printer.h"
#include "src/opt/PhaseManager.h"
#include "src/sem/Equivalence.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

TEST(ExhaustiveDifferential, EveryLeafMatchesTheRootOnTheSeededVectors) {
  PhaseManager PM;
  size_t TestedLeaves = 0, TestedRuns = 0, SkippedFunctions = 0;

  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    Interpreter Sim(M, sem::kEquivMemWords);

    for (Function &F : M.Functions) {
      EnumeratorConfig Cfg;
      Cfg.MaxLevelSequences = 50'000;
      Cfg.Jobs = 4;
      Enumerator E(PM, Cfg);
      const EnumerationResult Res = E.enumerate(F);
      if (!Res.complete()) {
        // The giants (dijkstra's main loop) have their own budgeted
        // suites; exhaustive means every leaf of every complete space.
        ++SkippedFunctions;
        continue;
      }

      // The root's runs define both the reference behavior and the step
      // budget per vector, exactly as src/sem plans them.
      const auto Vectors = sem::generateVectors(
          static_cast<uint32_t>(F.NumParams), sem::kDefaultVectorSeed,
          sem::kDefaultVectorCount);
      std::vector<size_t> Used;
      std::vector<uint64_t> Limits;
      std::vector<RunResult> RootRuns;
      for (size_t V = 0; V != Vectors.size(); ++V) {
        const RunResult R =
            Sim.run(F.Name, Vectors[V], sem::kRootStepLimit);
        if (!R.Ok && R.trapKind() == "step limit exceeded")
          continue;
        Used.push_back(V);
        Limits.push_back(sem::instanceStepLimit(R.DynamicInsts));
        RootRuns.push_back(R);
      }

      DagPaths Paths(Res);
      Paths.forEachInstance(
          F, PM, nullptr, [&](uint32_t Id, const Function &Inst) {
            if (!Res.Nodes[Id].isLeaf())
              return;
            ++TestedLeaves;
            Sim.overrideFunction(F.Name, &Inst);
            for (size_t K = 0; K != Used.size(); ++K) {
              const RunResult After =
                  Sim.run(F.Name, Vectors[Used[K]], Limits[K]);
              ++TestedRuns;
              const RunResult &Base = RootRuns[K];
              if (Base.Ok) {
                EXPECT_TRUE(Base.sameBehavior(After))
                    << W.Name << "/" << F.Name << " leaf " << Id
                    << " vector " << Used[K] << ": "
                    << (After.Ok ? "wrong result" : After.Error) << "\n"
                    << printFunction(Inst);
              } else {
                // Trapping vectors compare by trap class only: a legal
                // reschedule may move the trap point and partial output.
                EXPECT_EQ(Base.trapKind(), After.trapKind())
                    << W.Name << "/" << F.Name << " leaf " << Id
                    << " vector " << Used[K] << "\n"
                    << printFunction(Inst);
              }
            }
            Sim.overrideFunction(F.Name, nullptr);
          });
    }
  }

  // The sweep must have real coverage: thousands of leaf runs, with only
  // the known over-budget functions skipped.
  EXPECT_GE(TestedLeaves, 250u);
  EXPECT_GE(TestedRuns, 2000u);
  EXPECT_LE(SkippedFunctions, 3u);
}

} // namespace
