//===- golden_space_test.cpp - Enumeration golden anchors ------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pins the exact shape of several enumerated spaces. Any change to a
// phase, to canonicalization, or to the enumerator that alters the space
// of these functions shows up here first — with the understanding that an
// intentional optimizer change legitimately updates these numbers (like a
// compiler's golden-output tests).
//
//===----------------------------------------------------------------------===//

#include "src/core/SpaceStats.h"
#include "src/opt/PhaseManager.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

struct GoldenSpace {
  const char *Program;
  const char *Function;
  uint64_t Instances;
  uint64_t Attempted;
  uint32_t MaxLen;
  uint64_t Leaves;
  uint32_t BestSize;
  uint32_t WorstSize;
};

// Values recorded from the 1M-budget enumeration (see bench_output.txt).
const GoldenSpace Goldens[] = {
    {"dijkstra", "dijkstra", 1927, 21038, 16, 10, 88, 115},
    {"sha", "sha_transform", 120, 1431, 11, 8, 190, 248},
    {"bitcount", "bit_count", 194, 2388, 12, 5, 15, 25},
    {"fft", "bit_reverse", 242, 2791, 12, 5, 46, 72},
};

TEST(GoldenSpace, KnownSpacesStayStable) {
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  for (const GoldenSpace &G : Goldens) {
    const Workload *W = findWorkload(G.Program);
    ASSERT_NE(W, nullptr);
    Module M = compileOrDie(W->Source);
    Function &F = functionNamed(M, G.Function);
    EnumerationResult R = E.enumerate(F);
    ASSERT_TRUE(R.complete()) << G.Function;
    SpaceStats S = computeSpaceStats(F, R);
    EXPECT_EQ(S.FnInstances, G.Instances) << G.Function;
    EXPECT_EQ(S.AttemptedPhases, G.Attempted) << G.Function;
    EXPECT_EQ(S.MaxActiveLen, G.MaxLen) << G.Function;
    EXPECT_EQ(S.LeafInstances, G.Leaves) << G.Function;
    EXPECT_EQ(S.LeafCodeSizeMin, G.BestSize) << G.Function;
    EXPECT_EQ(S.LeafCodeSizeMax, G.WorstSize) << G.Function;
  }
}

} // namespace
