//===- semantic_spot_test.cpp - Sampled semantic equivalence -------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The whole enumerated space is supposed to contain *equivalent* function
// instances (Section 2: phase ordering changes the code, never the
// semantics). The golden-space and fuzz suites check leaves; this one
// samples random interior and leaf nodes of real workload DAGs — built
// with the parallel engine — materializes each through DagPaths, swaps it
// into the program, and compares a full simulator run against the
// unoptimized baseline.
//
//===----------------------------------------------------------------------===//

#include "src/core/DagPaths.h"

#include "src/core/Enumerator.h"
#include "src/frontend/Compile.h"
#include "src/ir/Printer.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "src/support/Rng.h"
#include "src/workloads/Workloads.h"
#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

TEST(SemanticSpot, SampledDagNodesPreserveProgramBehavior) {
  PhaseManager PM;
  Rng R(2026);
  size_t TestedNodes = 0;

  for (const Workload &W : allWorkloads()) {
    Module M = compileOrDie(W.Source);
    Interpreter Sim(M);
    RunResult Base = Sim.run("main", {});
    ASSERT_TRUE(Base.Ok) << W.Name << ": " << Base.Error;

    for (Function &F : M.Functions) {
      // Keep the per-test budget sane: small functions enumerate
      // completely in milliseconds; the giants have their own suites.
      if (F.instructionCount() > 60)
        continue;
      EnumeratorConfig Cfg;
      Cfg.MaxLevelSequences = 20'000;
      Cfg.Jobs = 4;
      Enumerator E(PM, Cfg);
      EnumerationResult Res = E.enumerate(F);
      if (!Res.complete())
        continue;

      DagPaths Paths(Res);
      for (int Draw = 0; Draw != 6; ++Draw) {
        uint32_t Id = static_cast<uint32_t>(R.below(Res.Nodes.size()));
        Function Inst = Paths.materialize(F, PM, Id);
        expectVerifies(Inst);
        Sim.overrideFunction(F.Name, &Inst);
        RunResult After = Sim.run("main", {});
        Sim.overrideFunction(F.Name, nullptr);
        ASSERT_TRUE(After.Ok)
            << W.Name << "/" << F.Name << " node " << Id << ": "
            << After.Error;
        EXPECT_TRUE(Base.sameBehavior(After))
            << W.Name << "/" << F.Name << " node " << Id << "\n"
            << printFunction(Inst);
        ++TestedNodes;
      }
    }
  }
  // The sweep must have real coverage, not silently skip everything.
  EXPECT_GE(TestedNodes, 60u);
}

} // namespace
