//===- codegen_test.cpp - MC codegen tests -------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tests/common/Helpers.h"

#include <gtest/gtest.h>

using namespace pose;
using namespace pose::testhelpers;

namespace {

TEST(Codegen, MinimalFunction) {
  Module M = compileOrDie("int f() { return 3; }");
  Function &F = functionNamed(M, "f");
  expectVerifies(F);
  // mov t,3 ; ret t
  ASSERT_EQ(F.Blocks.size(), 1u);
  ASSERT_EQ(F.Blocks[0].Insts.size(), 2u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Mov);
  EXPECT_EQ(F.Blocks[0].Insts[1].Opcode, Op::Ret);
}

TEST(Codegen, ParamsBecomeSlots) {
  Module M = compileOrDie("int f(int a, int b) { return a; }");
  Function &F = functionNamed(M, "f");
  EXPECT_EQ(F.NumParams, 2);
  ASSERT_GE(F.Slots.size(), 2u);
  EXPECT_TRUE(F.Slots[0].IsParam);
  EXPECT_EQ(F.Slots[0].Name, "a");
  // Naive code reads the parameter through Lea + Load.
  EXPECT_EQ(F.Blocks[0].Insts[0].Opcode, Op::Lea);
  EXPECT_TRUE(F.Blocks[0].Insts[0].Src[0].isSlot());
  EXPECT_EQ(F.Blocks[0].Insts[1].Opcode, Op::Load);
}

TEST(Codegen, AssignmentThroughStore) {
  Module M = compileOrDie("int f() { int x; x = 7; return x; }");
  Function &F = functionNamed(M, "f");
  expectVerifies(F);
  bool SawStore = false;
  for (const Rtl &I : F.Blocks[0].Insts)
    SawStore |= (I.Opcode == Op::Store);
  EXPECT_TRUE(SawStore) << printFunction(F);
}

TEST(Codegen, GlobalAccess) {
  Module M = compileOrDie("int g = 4; int f() { return g; }");
  Function &F = functionNamed(M, "f");
  bool SawGlobalLea = false;
  for (const Rtl &I : F.Blocks[0].Insts)
    SawGlobalLea |= (I.Opcode == Op::Lea && I.Src[0].isGlobal());
  EXPECT_TRUE(SawGlobalLea);
}

TEST(Codegen, WhileLoopShape) {
  Module M = compileOrDie(
      "int f(int n) { int i; i = 0; while (i < n) i = i + 1; return i; }");
  Function &F = functionNamed(M, "f");
  expectVerifies(F);
  // There must be a backward jump and a conditional branch.
  bool SawBranch = false, SawJump = false;
  for (const BasicBlock &B : F.Blocks)
    for (const Rtl &I : B.Insts) {
      SawBranch |= (I.Opcode == Op::Branch);
      SawJump |= (I.Opcode == Op::Jump);
    }
  EXPECT_TRUE(SawBranch);
  EXPECT_TRUE(SawJump);
  EXPECT_GE(F.Blocks.size(), 3u);
}

TEST(Codegen, CallsCheckedAndEmitted) {
  Module M = compileOrDie(
      "int add(int a, int b) { return a + b; }\n"
      "int f() { return add(1, 2); }");
  Function &F = functionNamed(M, "f");
  bool SawCall = false;
  for (const Rtl &I : F.Blocks[0].Insts)
    if (I.Opcode == Op::Call) {
      SawCall = true;
      EXPECT_EQ(I.Args.size(), 2u);
      EXPECT_TRUE(I.Dst.isReg());
    }
  EXPECT_TRUE(SawCall);
}

TEST(Codegen, VoidCallNoDest) {
  Module M = compileOrDie("void f() { out(1); }");
  Function &F = functionNamed(M, "f");
  bool SawCall = false;
  for (const Rtl &I : F.Blocks[0].Insts)
    if (I.Opcode == Op::Call) {
      SawCall = true;
      EXPECT_TRUE(I.Dst.isNone());
    }
  EXPECT_TRUE(SawCall);
}

TEST(Codegen, NoEmptyBlocks) {
  Module M = compileOrDie(
      "int f(int n) {\n"
      "  int s = 0; int i;\n"
      "  for (i = 0; i < n; i = i + 1) { if (i % 2) s = s + i; }\n"
      "  return s;\n"
      "}");
  Function &F = functionNamed(M, "f");
  for (const BasicBlock &B : F.Blocks)
    EXPECT_FALSE(B.empty()) << printFunction(F);
}

TEST(Codegen, SemanticErrors) {
  auto Fails = [](const std::string &S) {
    CompileResult R = compileMC(S);
    EXPECT_FALSE(R.ok()) << "expected diagnostics for: " << S;
  };
  Fails("int f() { return x; }");              // Undeclared.
  Fails("int f() { int x; int x; return 0; }");// Redeclared.
  Fails("int a[3]; int f() { return a; }");    // Array as scalar.
  Fails("int g; int f() { return g[0]; }");    // Scalar subscripted.
  Fails("int f() { return f(1); }");           // Arity mismatch.
  Fails("void v() {} int f() { return v(); }");// Void in expression.
  Fails("void f() { return 1; }");             // Value from void.
  Fails("int f() { return; }");                // Missing value.
  Fails("int f() { break; }");                 // Break outside loop.
  Fails("int g; int g; ");                     // Duplicate global.
  Fails("int f() {} int f() {}");              // Duplicate function.
  Fails("int f() { out(1,2); }");              // Builtin arity.
}

TEST(Codegen, ShadowingInNestedScopeAllowed) {
  Module M = compileOrDie(
      "int f() { int x = 1; { int x = 2; out(x); } return x; }");
  expectVerifies(functionNamed(M, "f"));
}

TEST(Codegen, AllFunctionsVerify) {
  Module M = compileOrDie(
      "int tbl[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};\n"
      "int popcount(int x) {\n"
      "  int n = 0;\n"
      "  while (x != 0) { n = n + tbl[x & 15]; x = x >>> 4; }\n"
      "  return n;\n"
      "}\n"
      "int main() { out(popcount(0x1234)); return 0; }");
  for (const Function &F : M.Functions)
    expectVerifies(F);
}

} // namespace
