//===- lexer_test.cpp - MC lexer tests ---------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

std::vector<Token> lex(const std::string &S) {
  return Lexer(S).lexAll();
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto T = lex("int foo void while whilex");
  ASSERT_EQ(T.size(), 6u);
  EXPECT_EQ(T[0].Kind, Tok::KwInt);
  EXPECT_EQ(T[1].Kind, Tok::Ident);
  EXPECT_EQ(T[1].Text, "foo");
  EXPECT_EQ(T[2].Kind, Tok::KwVoid);
  EXPECT_EQ(T[3].Kind, Tok::KwWhile);
  EXPECT_EQ(T[4].Kind, Tok::Ident); // Not a keyword prefix match.
  EXPECT_EQ(T[5].Kind, Tok::Eof);
}

TEST(Lexer, Numbers) {
  auto T = lex("0 42 0x1F 0X10");
  EXPECT_EQ(T[0].Value, 0);
  EXPECT_EQ(T[1].Value, 42);
  EXPECT_EQ(T[2].Value, 31);
  EXPECT_EQ(T[3].Value, 16);
}

TEST(Lexer, CharLiterals) {
  auto T = lex("'a' '\\n' '\\0' '\\\\'");
  EXPECT_EQ(T[0].Value, 'a');
  EXPECT_EQ(T[1].Value, '\n');
  EXPECT_EQ(T[2].Value, 0);
  EXPECT_EQ(T[3].Value, '\\');
}

TEST(Lexer, StringLiteral) {
  auto T = lex("\"hi\\n\"");
  ASSERT_EQ(T[0].Kind, Tok::String);
  EXPECT_EQ(T[0].Text, "hi\n");
}

TEST(Lexer, ShiftOperators) {
  auto T = lex("<< >> >>> < <= > >=");
  EXPECT_EQ(T[0].Kind, Tok::Shl);
  EXPECT_EQ(T[1].Kind, Tok::Shr);
  EXPECT_EQ(T[2].Kind, Tok::Ushr);
  EXPECT_EQ(T[3].Kind, Tok::Lt);
  EXPECT_EQ(T[4].Kind, Tok::Le);
  EXPECT_EQ(T[5].Kind, Tok::Gt);
  EXPECT_EQ(T[6].Kind, Tok::Ge);
}

TEST(Lexer, LogicalAndBitwise) {
  auto T = lex("&& & || | == = != !");
  EXPECT_EQ(T[0].Kind, Tok::AmpAmp);
  EXPECT_EQ(T[1].Kind, Tok::Amp);
  EXPECT_EQ(T[2].Kind, Tok::PipePipe);
  EXPECT_EQ(T[3].Kind, Tok::Pipe);
  EXPECT_EQ(T[4].Kind, Tok::EqEq);
  EXPECT_EQ(T[5].Kind, Tok::Assign);
  EXPECT_EQ(T[6].Kind, Tok::NotEq);
  EXPECT_EQ(T[7].Kind, Tok::Bang);
}

TEST(Lexer, CommentsSkipped) {
  auto T = lex("a // line comment\n b /* block\ncomment */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(Lexer, LineNumbersTracked) {
  auto T = lex("a\nb\n  c");
  EXPECT_EQ(T[0].Line, 1);
  EXPECT_EQ(T[1].Line, 2);
  EXPECT_EQ(T[2].Line, 3);
  EXPECT_EQ(T[2].Col, 3);
}

TEST(Lexer, ErrorToken) {
  auto T = lex("a $ b");
  ASSERT_GE(T.size(), 2u);
  EXPECT_EQ(T[1].Kind, Tok::Error);
}

TEST(Lexer, UnterminatedString) {
  auto T = lex("\"abc");
  EXPECT_EQ(T[0].Kind, Tok::Error);
}

} // namespace
