//===- parser_test.cpp - MC parser tests --------------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//

#include "src/frontend/Parser.h"

#include <gtest/gtest.h>

using namespace pose;

namespace {

Program parseOk(const std::string &S) {
  std::vector<Diag> Diags;
  Program P = parseMC(S, Diags);
  EXPECT_TRUE(Diags.empty()) << (Diags.empty() ? "" : Diags[0].Message);
  return P;
}

void parseFails(const std::string &S) {
  std::vector<Diag> Diags;
  parseMC(S, Diags);
  EXPECT_FALSE(Diags.empty()) << "expected a parse error for: " << S;
}

TEST(Parser, GlobalScalar) {
  Program P = parseOk("int g; int h = 5; int i = -3;");
  ASSERT_EQ(P.Globals.size(), 3u);
  EXPECT_EQ(P.Globals[0].Name, "g");
  EXPECT_FALSE(P.Globals[0].IsArray);
  EXPECT_EQ(P.Globals[1].Init, (std::vector<int32_t>{5}));
  EXPECT_EQ(P.Globals[2].Init, (std::vector<int32_t>{-3}));
}

TEST(Parser, GlobalArrays) {
  Program P = parseOk("int a[4]; int b[] = {1,2,3}; int c[5] = {9};");
  ASSERT_EQ(P.Globals.size(), 3u);
  EXPECT_TRUE(P.Globals[0].IsArray);
  EXPECT_EQ(P.Globals[0].Size, 4);
  EXPECT_EQ(P.Globals[1].Size, 3);
  EXPECT_EQ(P.Globals[1].Init, (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(P.Globals[2].Size, 5);
}

TEST(Parser, StringInitializer) {
  Program P = parseOk("int s[] = \"ab\";");
  ASSERT_EQ(P.Globals.size(), 1u);
  EXPECT_EQ(P.Globals[0].Size, 3); // 'a', 'b', NUL.
  EXPECT_EQ(P.Globals[0].Init, (std::vector<int32_t>{'a', 'b', 0}));
}

TEST(Parser, FunctionShapes) {
  Program P = parseOk("int f(int a, int b) { return a + b; }\n"
                      "void g() { }\n"
                      "void h(void) { }\n");
  ASSERT_EQ(P.Funcs.size(), 3u);
  EXPECT_TRUE(P.Funcs[0].ReturnsValue);
  EXPECT_EQ(P.Funcs[0].Params, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(P.Funcs[1].ReturnsValue);
  EXPECT_TRUE(P.Funcs[1].Params.empty());
  EXPECT_TRUE(P.Funcs[2].Params.empty());
}

TEST(Parser, Precedence) {
  // a + b * c parses as a + (b * c).
  Program P = parseOk("int f() { return 1 + 2 * 3; }");
  const Stmt &Ret = *P.Funcs[0].Body->Stmts[0];
  ASSERT_EQ(Ret.Kind, StmtKind::Return);
  const Expr &E = *Ret.E;
  ASSERT_EQ(E.Kind, ExprKind::Binary);
  EXPECT_EQ(E.Op, Tok::Plus);
  EXPECT_EQ(E.Rhs->Op, Tok::Star);
}

TEST(Parser, AssignmentRightAssociative) {
  Program P = parseOk("int f() { int a; int b; a = b = 1; return a; }");
  const Stmt &S = *P.Funcs[0].Body->Stmts[2];
  ASSERT_EQ(S.Kind, StmtKind::Expr);
  ASSERT_EQ(S.E->Kind, ExprKind::Assign);
  EXPECT_EQ(S.E->Rhs->Kind, ExprKind::Assign);
}

TEST(Parser, StatementsParse) {
  parseOk("int f(int n) {\n"
          "  int s = 0;\n"
          "  int i;\n"
          "  for (i = 0; i < n; i = i + 1) s = s + i;\n"
          "  while (s > 100) { s = s - 1; }\n"
          "  do { s = s + 1; } while (s < 10);\n"
          "  if (s == 7) return 1; else return s;\n"
          "}");
}

TEST(Parser, BreakContinue) {
  Program P = parseOk(
      "int f() { while (1) { if (1) break; continue; } return 0; }");
  EXPECT_EQ(P.Funcs.size(), 1u);
}

TEST(Parser, LocalArray) {
  Program P = parseOk("int f() { int a[8]; a[0] = 1; return a[0]; }");
  const Stmt &D = *P.Funcs[0].Body->Stmts[0];
  EXPECT_EQ(D.Kind, StmtKind::Decl);
  EXPECT_EQ(D.DeclArraySize, 8);
}

TEST(Parser, Errors) {
  parseFails("int f() { return 1 }");      // Missing semicolon.
  parseFails("int f() { a = ; }");         // Missing expression.
  parseFails("int 3x;");                   // Bad name.
  parseFails("float f;");                  // Unknown type.
  parseFails("int f() { 1 = 2; }");        // Bad assignment target.
  parseFails("int a[] ;");                 // No size, no initializer.
  parseFails("int a[0];");                 // Non-positive size.
  parseFails("void g;");                   // Void variable.
  parseFails("int f(int) {}");             // Missing parameter name.
  parseFails("int s = \"x\";");            // String needs array.
}

TEST(Parser, UnaryOperators) {
  Program P = parseOk("int f(int x) { return -x + !x + ~x; }");
  EXPECT_EQ(P.Funcs.size(), 1u);
}

} // namespace
