# Empty dependencies file for bench_fig6_enhancements.
# This may be replaced when dependencies are built.
