file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_enhancements.dir/bench_fig6_enhancements.cpp.o"
  "CMakeFiles/bench_fig6_enhancements.dir/bench_fig6_enhancements.cpp.o.d"
  "bench_fig6_enhancements"
  "bench_fig6_enhancements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_enhancements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
