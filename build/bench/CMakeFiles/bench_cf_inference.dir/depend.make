# Empty dependencies file for bench_cf_inference.
# This may be replaced when dependencies are built.
