file(REMOVE_RECURSE
  "CMakeFiles/bench_cf_inference.dir/bench_cf_inference.cpp.o"
  "CMakeFiles/bench_cf_inference.dir/bench_cf_inference.cpp.o.d"
  "bench_cf_inference"
  "bench_cf_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cf_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
