# Empty dependencies file for bench_table4_6.
# This may be replaced when dependencies are built.
