file(REMOVE_RECURSE
  "CMakeFiles/bench_searches.dir/bench_searches.cpp.o"
  "CMakeFiles/bench_searches.dir/bench_searches.cpp.o.d"
  "bench_searches"
  "bench_searches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_searches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
