# Empty compiler generated dependencies file for bench_searches.
# This may be replaced when dependencies are built.
