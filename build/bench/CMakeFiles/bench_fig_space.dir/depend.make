# Empty dependencies file for bench_fig_space.
# This may be replaced when dependencies are built.
