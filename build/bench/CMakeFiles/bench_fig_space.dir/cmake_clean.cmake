file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_space.dir/bench_fig_space.cpp.o"
  "CMakeFiles/bench_fig_space.dir/bench_fig_space.cpp.o.d"
  "bench_fig_space"
  "bench_fig_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
