file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_compiler.dir/probabilistic_compiler.cpp.o"
  "CMakeFiles/probabilistic_compiler.dir/probabilistic_compiler.cpp.o.d"
  "probabilistic_compiler"
  "probabilistic_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
