# Empty compiler generated dependencies file for probabilistic_compiler.
# This may be replaced when dependencies are built.
