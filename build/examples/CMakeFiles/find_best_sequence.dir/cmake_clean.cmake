file(REMOVE_RECURSE
  "CMakeFiles/find_best_sequence.dir/find_best_sequence.cpp.o"
  "CMakeFiles/find_best_sequence.dir/find_best_sequence.cpp.o.d"
  "find_best_sequence"
  "find_best_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_best_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
