# Empty dependencies file for find_best_sequence.
# This may be replaced when dependencies are built.
