
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/interaction_analysis.cpp" "examples/CMakeFiles/interaction_analysis.dir/interaction_analysis.cpp.o" "gcc" "examples/CMakeFiles/interaction_analysis.dir/interaction_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pose_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/pose_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pose_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pose_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pose_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pose_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pose_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pose_support.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pose_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
