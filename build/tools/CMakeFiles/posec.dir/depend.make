# Empty dependencies file for posec.
# This may be replaced when dependencies are built.
