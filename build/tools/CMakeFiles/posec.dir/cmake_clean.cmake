file(REMOVE_RECURSE
  "CMakeFiles/posec.dir/posec.cpp.o"
  "CMakeFiles/posec.dir/posec.cpp.o.d"
  "posec"
  "posec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
