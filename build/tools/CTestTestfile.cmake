# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(posec_run "/root/repo/build/tools/posec" "/root/repo/examples/mc/squares.mc" "--run")
set_tests_properties(posec_run PROPERTIES  PASS_REGULAR_EXPRESSION "285" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(posec_enumerate "/root/repo/build/tools/posec" "/root/repo/examples/mc/squares.mc" "--enumerate=squares" "--budget=50000")
set_tests_properties(posec_enumerate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(posec_dot "/root/repo/build/tools/posec" "/root/repo/examples/mc/squares.mc" "--dot=squares" "--budget=50000")
set_tests_properties(posec_dot PROPERTIES  PASS_REGULAR_EXPRESSION "digraph" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(posec_sequence "/root/repo/build/tools/posec" "/root/repo/examples/mc/squares.mc" "--sequence=oskcshuirjnq" "--run")
set_tests_properties(posec_sequence PROPERTIES  PASS_REGULAR_EXPRESSION "285" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(posec_prob "/root/repo/build/tools/posec" "/root/repo/examples/mc/squares.mc" "--opt=prob" "--run" "--budget=50000")
set_tests_properties(posec_prob PROPERTIES  PASS_REGULAR_EXPRESSION "285" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
