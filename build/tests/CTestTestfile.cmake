# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pose_support_test[1]_include.cmake")
include("/root/repo/build/tests/pose_ir_test[1]_include.cmake")
include("/root/repo/build/tests/pose_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/pose_frontend_test[1]_include.cmake")
include("/root/repo/build/tests/pose_sim_test[1]_include.cmake")
include("/root/repo/build/tests/pose_machine_test[1]_include.cmake")
include("/root/repo/build/tests/pose_opt_test[1]_include.cmake")
include("/root/repo/build/tests/pose_core_test[1]_include.cmake")
include("/root/repo/build/tests/pose_workloads_test[1]_include.cmake")
include("/root/repo/build/tests/pose_integration_test[1]_include.cmake")
