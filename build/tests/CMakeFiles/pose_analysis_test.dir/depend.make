# Empty dependencies file for pose_analysis_test.
# This may be replaced when dependencies are built.
