file(REMOVE_RECURSE
  "CMakeFiles/pose_analysis_test.dir/analysis/dependence_test.cpp.o"
  "CMakeFiles/pose_analysis_test.dir/analysis/dependence_test.cpp.o.d"
  "CMakeFiles/pose_analysis_test.dir/analysis/dominators_test.cpp.o"
  "CMakeFiles/pose_analysis_test.dir/analysis/dominators_test.cpp.o.d"
  "CMakeFiles/pose_analysis_test.dir/analysis/liveness_test.cpp.o"
  "CMakeFiles/pose_analysis_test.dir/analysis/liveness_test.cpp.o.d"
  "CMakeFiles/pose_analysis_test.dir/analysis/loops_test.cpp.o"
  "CMakeFiles/pose_analysis_test.dir/analysis/loops_test.cpp.o.d"
  "pose_analysis_test"
  "pose_analysis_test.pdb"
  "pose_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
