# Empty dependencies file for pose_ir_test.
# This may be replaced when dependencies are built.
