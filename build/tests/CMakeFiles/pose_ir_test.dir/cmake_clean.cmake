file(REMOVE_RECURSE
  "CMakeFiles/pose_ir_test.dir/ir/function_test.cpp.o"
  "CMakeFiles/pose_ir_test.dir/ir/function_test.cpp.o.d"
  "CMakeFiles/pose_ir_test.dir/ir/parse_test.cpp.o"
  "CMakeFiles/pose_ir_test.dir/ir/parse_test.cpp.o.d"
  "CMakeFiles/pose_ir_test.dir/ir/printer_test.cpp.o"
  "CMakeFiles/pose_ir_test.dir/ir/printer_test.cpp.o.d"
  "CMakeFiles/pose_ir_test.dir/ir/rtl_test.cpp.o"
  "CMakeFiles/pose_ir_test.dir/ir/rtl_test.cpp.o.d"
  "CMakeFiles/pose_ir_test.dir/ir/verify_test.cpp.o"
  "CMakeFiles/pose_ir_test.dir/ir/verify_test.cpp.o.d"
  "pose_ir_test"
  "pose_ir_test.pdb"
  "pose_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
