# Empty compiler generated dependencies file for pose_support_test.
# This may be replaced when dependencies are built.
