file(REMOVE_RECURSE
  "CMakeFiles/pose_support_test.dir/support/bitvector_test.cpp.o"
  "CMakeFiles/pose_support_test.dir/support/bitvector_test.cpp.o.d"
  "CMakeFiles/pose_support_test.dir/support/crc32_test.cpp.o"
  "CMakeFiles/pose_support_test.dir/support/crc32_test.cpp.o.d"
  "CMakeFiles/pose_support_test.dir/support/rng_test.cpp.o"
  "CMakeFiles/pose_support_test.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/pose_support_test.dir/support/str_test.cpp.o"
  "CMakeFiles/pose_support_test.dir/support/str_test.cpp.o.d"
  "pose_support_test"
  "pose_support_test.pdb"
  "pose_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
