# Empty compiler generated dependencies file for pose_sim_test.
# This may be replaced when dependencies are built.
