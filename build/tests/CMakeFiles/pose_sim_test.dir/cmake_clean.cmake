file(REMOVE_RECURSE
  "CMakeFiles/pose_sim_test.dir/sim/interpreter_test.cpp.o"
  "CMakeFiles/pose_sim_test.dir/sim/interpreter_test.cpp.o.d"
  "CMakeFiles/pose_sim_test.dir/sim/semantics_test.cpp.o"
  "CMakeFiles/pose_sim_test.dir/sim/semantics_test.cpp.o.d"
  "pose_sim_test"
  "pose_sim_test.pdb"
  "pose_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
