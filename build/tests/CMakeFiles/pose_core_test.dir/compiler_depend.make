# Empty compiler generated dependencies file for pose_core_test.
# This may be replaced when dependencies are built.
