file(REMOVE_RECURSE
  "CMakeFiles/pose_core_test.dir/core/canonical_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/canonical_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/cfinference_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/cfinference_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/compilers_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/compilers_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/dagexport_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/dagexport_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/enumerator_extra_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/enumerator_extra_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/enumerator_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/enumerator_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/interaction_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/interaction_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/model_io_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/model_io_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/pruning_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/pruning_test.cpp.o.d"
  "CMakeFiles/pose_core_test.dir/core/search_test.cpp.o"
  "CMakeFiles/pose_core_test.dir/core/search_test.cpp.o.d"
  "pose_core_test"
  "pose_core_test.pdb"
  "pose_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
