# Empty dependencies file for pose_machine_test.
# This may be replaced when dependencies are built.
