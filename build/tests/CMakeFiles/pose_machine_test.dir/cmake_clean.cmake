file(REMOVE_RECURSE
  "CMakeFiles/pose_machine_test.dir/machine/regassign_test.cpp.o"
  "CMakeFiles/pose_machine_test.dir/machine/regassign_test.cpp.o.d"
  "CMakeFiles/pose_machine_test.dir/machine/schedule_test.cpp.o"
  "CMakeFiles/pose_machine_test.dir/machine/schedule_test.cpp.o.d"
  "CMakeFiles/pose_machine_test.dir/machine/target_test.cpp.o"
  "CMakeFiles/pose_machine_test.dir/machine/target_test.cpp.o.d"
  "pose_machine_test"
  "pose_machine_test.pdb"
  "pose_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
