file(REMOVE_RECURSE
  "CMakeFiles/pose_integration_test.dir/integration/expr_conformance_test.cpp.o"
  "CMakeFiles/pose_integration_test.dir/integration/expr_conformance_test.cpp.o.d"
  "CMakeFiles/pose_integration_test.dir/integration/fuzz_test.cpp.o"
  "CMakeFiles/pose_integration_test.dir/integration/fuzz_test.cpp.o.d"
  "CMakeFiles/pose_integration_test.dir/integration/golden_space_test.cpp.o"
  "CMakeFiles/pose_integration_test.dir/integration/golden_space_test.cpp.o.d"
  "pose_integration_test"
  "pose_integration_test.pdb"
  "pose_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
