# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pose_integration_test.
