# Empty compiler generated dependencies file for pose_integration_test.
# This may be replaced when dependencies are built.
