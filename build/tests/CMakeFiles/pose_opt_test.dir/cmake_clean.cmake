file(REMOVE_RECURSE
  "CMakeFiles/pose_opt_test.dir/opt/cleanup_invariant_test.cpp.o"
  "CMakeFiles/pose_opt_test.dir/opt/cleanup_invariant_test.cpp.o.d"
  "CMakeFiles/pose_opt_test.dir/opt/differential_test.cpp.o"
  "CMakeFiles/pose_opt_test.dir/opt/differential_test.cpp.o.d"
  "CMakeFiles/pose_opt_test.dir/opt/phase_edge_test.cpp.o"
  "CMakeFiles/pose_opt_test.dir/opt/phase_edge_test.cpp.o.d"
  "CMakeFiles/pose_opt_test.dir/opt/phases_test.cpp.o"
  "CMakeFiles/pose_opt_test.dir/opt/phases_test.cpp.o.d"
  "pose_opt_test"
  "pose_opt_test.pdb"
  "pose_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
