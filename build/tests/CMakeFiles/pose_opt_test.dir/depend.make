# Empty dependencies file for pose_opt_test.
# This may be replaced when dependencies are built.
