# Empty dependencies file for pose_frontend_test.
# This may be replaced when dependencies are built.
