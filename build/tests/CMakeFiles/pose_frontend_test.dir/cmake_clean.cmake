file(REMOVE_RECURSE
  "CMakeFiles/pose_frontend_test.dir/frontend/codegen_test.cpp.o"
  "CMakeFiles/pose_frontend_test.dir/frontend/codegen_test.cpp.o.d"
  "CMakeFiles/pose_frontend_test.dir/frontend/lexer_test.cpp.o"
  "CMakeFiles/pose_frontend_test.dir/frontend/lexer_test.cpp.o.d"
  "CMakeFiles/pose_frontend_test.dir/frontend/parser_test.cpp.o"
  "CMakeFiles/pose_frontend_test.dir/frontend/parser_test.cpp.o.d"
  "pose_frontend_test"
  "pose_frontend_test.pdb"
  "pose_frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
