file(REMOVE_RECURSE
  "CMakeFiles/pose_workloads_test.dir/workloads/workloads_test.cpp.o"
  "CMakeFiles/pose_workloads_test.dir/workloads/workloads_test.cpp.o.d"
  "pose_workloads_test"
  "pose_workloads_test.pdb"
  "pose_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
