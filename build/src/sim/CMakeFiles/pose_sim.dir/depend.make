# Empty dependencies file for pose_sim.
# This may be replaced when dependencies are built.
