file(REMOVE_RECURSE
  "libpose_sim.a"
)
