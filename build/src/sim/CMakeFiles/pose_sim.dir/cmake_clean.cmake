file(REMOVE_RECURSE
  "CMakeFiles/pose_sim.dir/Interpreter.cpp.o"
  "CMakeFiles/pose_sim.dir/Interpreter.cpp.o.d"
  "libpose_sim.a"
  "libpose_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
