# Empty dependencies file for pose_analysis.
# This may be replaced when dependencies are built.
