file(REMOVE_RECURSE
  "CMakeFiles/pose_analysis.dir/DependenceDag.cpp.o"
  "CMakeFiles/pose_analysis.dir/DependenceDag.cpp.o.d"
  "CMakeFiles/pose_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/pose_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/pose_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/pose_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/pose_analysis.dir/Loops.cpp.o"
  "CMakeFiles/pose_analysis.dir/Loops.cpp.o.d"
  "libpose_analysis.a"
  "libpose_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
