file(REMOVE_RECURSE
  "libpose_analysis.a"
)
