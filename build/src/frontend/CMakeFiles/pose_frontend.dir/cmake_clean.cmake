file(REMOVE_RECURSE
  "CMakeFiles/pose_frontend.dir/Codegen.cpp.o"
  "CMakeFiles/pose_frontend.dir/Codegen.cpp.o.d"
  "CMakeFiles/pose_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/pose_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/pose_frontend.dir/Parser.cpp.o"
  "CMakeFiles/pose_frontend.dir/Parser.cpp.o.d"
  "libpose_frontend.a"
  "libpose_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
