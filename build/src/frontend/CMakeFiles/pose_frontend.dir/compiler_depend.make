# Empty compiler generated dependencies file for pose_frontend.
# This may be replaced when dependencies are built.
