file(REMOVE_RECURSE
  "libpose_frontend.a"
)
