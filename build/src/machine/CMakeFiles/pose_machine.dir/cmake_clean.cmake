file(REMOVE_RECURSE
  "CMakeFiles/pose_machine.dir/EntryExit.cpp.o"
  "CMakeFiles/pose_machine.dir/EntryExit.cpp.o.d"
  "CMakeFiles/pose_machine.dir/RegisterAssign.cpp.o"
  "CMakeFiles/pose_machine.dir/RegisterAssign.cpp.o.d"
  "CMakeFiles/pose_machine.dir/Schedule.cpp.o"
  "CMakeFiles/pose_machine.dir/Schedule.cpp.o.d"
  "CMakeFiles/pose_machine.dir/Target.cpp.o"
  "CMakeFiles/pose_machine.dir/Target.cpp.o.d"
  "libpose_machine.a"
  "libpose_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
