file(REMOVE_RECURSE
  "libpose_machine.a"
)
