# Empty compiler generated dependencies file for pose_machine.
# This may be replaced when dependencies are built.
