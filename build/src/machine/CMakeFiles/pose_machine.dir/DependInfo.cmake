
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/EntryExit.cpp" "src/machine/CMakeFiles/pose_machine.dir/EntryExit.cpp.o" "gcc" "src/machine/CMakeFiles/pose_machine.dir/EntryExit.cpp.o.d"
  "/root/repo/src/machine/RegisterAssign.cpp" "src/machine/CMakeFiles/pose_machine.dir/RegisterAssign.cpp.o" "gcc" "src/machine/CMakeFiles/pose_machine.dir/RegisterAssign.cpp.o.d"
  "/root/repo/src/machine/Schedule.cpp" "src/machine/CMakeFiles/pose_machine.dir/Schedule.cpp.o" "gcc" "src/machine/CMakeFiles/pose_machine.dir/Schedule.cpp.o.d"
  "/root/repo/src/machine/Target.cpp" "src/machine/CMakeFiles/pose_machine.dir/Target.cpp.o" "gcc" "src/machine/CMakeFiles/pose_machine.dir/Target.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pose_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pose_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pose_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
