file(REMOVE_RECURSE
  "CMakeFiles/pose_support.dir/Crc32.cpp.o"
  "CMakeFiles/pose_support.dir/Crc32.cpp.o.d"
  "CMakeFiles/pose_support.dir/Rng.cpp.o"
  "CMakeFiles/pose_support.dir/Rng.cpp.o.d"
  "CMakeFiles/pose_support.dir/Str.cpp.o"
  "CMakeFiles/pose_support.dir/Str.cpp.o.d"
  "libpose_support.a"
  "libpose_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
