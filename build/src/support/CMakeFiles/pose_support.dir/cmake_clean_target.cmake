file(REMOVE_RECURSE
  "libpose_support.a"
)
