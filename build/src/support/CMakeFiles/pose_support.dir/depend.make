# Empty dependencies file for pose_support.
# This may be replaced when dependencies are built.
