file(REMOVE_RECURSE
  "CMakeFiles/pose_ir.dir/Function.cpp.o"
  "CMakeFiles/pose_ir.dir/Function.cpp.o.d"
  "CMakeFiles/pose_ir.dir/Parse.cpp.o"
  "CMakeFiles/pose_ir.dir/Parse.cpp.o.d"
  "CMakeFiles/pose_ir.dir/Printer.cpp.o"
  "CMakeFiles/pose_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/pose_ir.dir/Rtl.cpp.o"
  "CMakeFiles/pose_ir.dir/Rtl.cpp.o.d"
  "CMakeFiles/pose_ir.dir/Verify.cpp.o"
  "CMakeFiles/pose_ir.dir/Verify.cpp.o.d"
  "libpose_ir.a"
  "libpose_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
