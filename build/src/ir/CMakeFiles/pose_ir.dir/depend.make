# Empty dependencies file for pose_ir.
# This may be replaced when dependencies are built.
