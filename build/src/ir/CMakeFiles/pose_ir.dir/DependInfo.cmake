
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Function.cpp" "src/ir/CMakeFiles/pose_ir.dir/Function.cpp.o" "gcc" "src/ir/CMakeFiles/pose_ir.dir/Function.cpp.o.d"
  "/root/repo/src/ir/Parse.cpp" "src/ir/CMakeFiles/pose_ir.dir/Parse.cpp.o" "gcc" "src/ir/CMakeFiles/pose_ir.dir/Parse.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/pose_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/pose_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Rtl.cpp" "src/ir/CMakeFiles/pose_ir.dir/Rtl.cpp.o" "gcc" "src/ir/CMakeFiles/pose_ir.dir/Rtl.cpp.o.d"
  "/root/repo/src/ir/Verify.cpp" "src/ir/CMakeFiles/pose_ir.dir/Verify.cpp.o" "gcc" "src/ir/CMakeFiles/pose_ir.dir/Verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pose_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
