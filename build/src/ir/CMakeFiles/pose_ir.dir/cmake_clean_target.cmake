file(REMOVE_RECURSE
  "libpose_ir.a"
)
