
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/BlockReordering.cpp" "src/opt/CMakeFiles/pose_opt.dir/BlockReordering.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/BlockReordering.cpp.o.d"
  "/root/repo/src/opt/BranchChaining.cpp" "src/opt/CMakeFiles/pose_opt.dir/BranchChaining.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/BranchChaining.cpp.o.d"
  "/root/repo/src/opt/Cleanup.cpp" "src/opt/CMakeFiles/pose_opt.dir/Cleanup.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/Cleanup.cpp.o.d"
  "/root/repo/src/opt/CodeAbstraction.cpp" "src/opt/CMakeFiles/pose_opt.dir/CodeAbstraction.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/CodeAbstraction.cpp.o.d"
  "/root/repo/src/opt/Cse.cpp" "src/opt/CMakeFiles/pose_opt.dir/Cse.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/Cse.cpp.o.d"
  "/root/repo/src/opt/DeadAssignElim.cpp" "src/opt/CMakeFiles/pose_opt.dir/DeadAssignElim.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/DeadAssignElim.cpp.o.d"
  "/root/repo/src/opt/EvalOrder.cpp" "src/opt/CMakeFiles/pose_opt.dir/EvalOrder.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/EvalOrder.cpp.o.d"
  "/root/repo/src/opt/InstructionSelection.cpp" "src/opt/CMakeFiles/pose_opt.dir/InstructionSelection.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/InstructionSelection.cpp.o.d"
  "/root/repo/src/opt/LoopTransforms.cpp" "src/opt/CMakeFiles/pose_opt.dir/LoopTransforms.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/LoopTransforms.cpp.o.d"
  "/root/repo/src/opt/LoopUnrolling.cpp" "src/opt/CMakeFiles/pose_opt.dir/LoopUnrolling.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/LoopUnrolling.cpp.o.d"
  "/root/repo/src/opt/MinimizeLoopJumps.cpp" "src/opt/CMakeFiles/pose_opt.dir/MinimizeLoopJumps.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/MinimizeLoopJumps.cpp.o.d"
  "/root/repo/src/opt/Phase.cpp" "src/opt/CMakeFiles/pose_opt.dir/Phase.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/Phase.cpp.o.d"
  "/root/repo/src/opt/PhaseManager.cpp" "src/opt/CMakeFiles/pose_opt.dir/PhaseManager.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/PhaseManager.cpp.o.d"
  "/root/repo/src/opt/RegisterAllocation.cpp" "src/opt/CMakeFiles/pose_opt.dir/RegisterAllocation.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/RegisterAllocation.cpp.o.d"
  "/root/repo/src/opt/ReverseBranches.cpp" "src/opt/CMakeFiles/pose_opt.dir/ReverseBranches.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/ReverseBranches.cpp.o.d"
  "/root/repo/src/opt/StrengthReduction.cpp" "src/opt/CMakeFiles/pose_opt.dir/StrengthReduction.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/StrengthReduction.cpp.o.d"
  "/root/repo/src/opt/UnreachableCode.cpp" "src/opt/CMakeFiles/pose_opt.dir/UnreachableCode.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/UnreachableCode.cpp.o.d"
  "/root/repo/src/opt/UselessJumps.cpp" "src/opt/CMakeFiles/pose_opt.dir/UselessJumps.cpp.o" "gcc" "src/opt/CMakeFiles/pose_opt.dir/UselessJumps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pose_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pose_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pose_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pose_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
