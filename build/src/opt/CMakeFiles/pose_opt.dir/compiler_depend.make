# Empty compiler generated dependencies file for pose_opt.
# This may be replaced when dependencies are built.
