file(REMOVE_RECURSE
  "libpose_opt.a"
)
