# Empty dependencies file for pose_workloads.
# This may be replaced when dependencies are built.
