file(REMOVE_RECURSE
  "CMakeFiles/pose_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/pose_workloads.dir/Workloads.cpp.o.d"
  "libpose_workloads.a"
  "libpose_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
