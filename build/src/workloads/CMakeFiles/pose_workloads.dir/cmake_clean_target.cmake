file(REMOVE_RECURSE
  "libpose_workloads.a"
)
