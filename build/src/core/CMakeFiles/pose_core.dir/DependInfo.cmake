
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Canonical.cpp" "src/core/CMakeFiles/pose_core.dir/Canonical.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/Canonical.cpp.o.d"
  "/root/repo/src/core/CfInference.cpp" "src/core/CMakeFiles/pose_core.dir/CfInference.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/CfInference.cpp.o.d"
  "/root/repo/src/core/Compilers.cpp" "src/core/CMakeFiles/pose_core.dir/Compilers.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/Compilers.cpp.o.d"
  "/root/repo/src/core/DagExport.cpp" "src/core/CMakeFiles/pose_core.dir/DagExport.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/DagExport.cpp.o.d"
  "/root/repo/src/core/DagPaths.cpp" "src/core/CMakeFiles/pose_core.dir/DagPaths.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/DagPaths.cpp.o.d"
  "/root/repo/src/core/Enumerator.cpp" "src/core/CMakeFiles/pose_core.dir/Enumerator.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/Enumerator.cpp.o.d"
  "/root/repo/src/core/Interaction.cpp" "src/core/CMakeFiles/pose_core.dir/Interaction.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/Interaction.cpp.o.d"
  "/root/repo/src/core/Search.cpp" "src/core/CMakeFiles/pose_core.dir/Search.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/Search.cpp.o.d"
  "/root/repo/src/core/SpaceStats.cpp" "src/core/CMakeFiles/pose_core.dir/SpaceStats.cpp.o" "gcc" "src/core/CMakeFiles/pose_core.dir/SpaceStats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/pose_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pose_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pose_support.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pose_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pose_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pose_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pose_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
