file(REMOVE_RECURSE
  "libpose_core.a"
)
