# Empty compiler generated dependencies file for pose_core.
# This may be replaced when dependencies are built.
