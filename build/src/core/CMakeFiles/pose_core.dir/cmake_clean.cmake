file(REMOVE_RECURSE
  "CMakeFiles/pose_core.dir/Canonical.cpp.o"
  "CMakeFiles/pose_core.dir/Canonical.cpp.o.d"
  "CMakeFiles/pose_core.dir/CfInference.cpp.o"
  "CMakeFiles/pose_core.dir/CfInference.cpp.o.d"
  "CMakeFiles/pose_core.dir/Compilers.cpp.o"
  "CMakeFiles/pose_core.dir/Compilers.cpp.o.d"
  "CMakeFiles/pose_core.dir/DagExport.cpp.o"
  "CMakeFiles/pose_core.dir/DagExport.cpp.o.d"
  "CMakeFiles/pose_core.dir/DagPaths.cpp.o"
  "CMakeFiles/pose_core.dir/DagPaths.cpp.o.d"
  "CMakeFiles/pose_core.dir/Enumerator.cpp.o"
  "CMakeFiles/pose_core.dir/Enumerator.cpp.o.d"
  "CMakeFiles/pose_core.dir/Interaction.cpp.o"
  "CMakeFiles/pose_core.dir/Interaction.cpp.o.d"
  "CMakeFiles/pose_core.dir/Search.cpp.o"
  "CMakeFiles/pose_core.dir/Search.cpp.o.d"
  "CMakeFiles/pose_core.dir/SpaceStats.cpp.o"
  "CMakeFiles/pose_core.dir/SpaceStats.cpp.o.d"
  "libpose_core.a"
  "libpose_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pose_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
