//===- bench_table7.cpp - Reproduces Table 7 ----------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 7, "Comparison between the Old Batch and the New Probabilistic
// Approaches of Compilation": per function, the attempted/active phase
// counts and compile time of the fixed-order batch compiler versus the
// Figure 8 probabilistic compiler (trained on the exhaustively enumerated
// spaces), plus code-size and dynamic-instruction-count ratios.
//
// Flags: --budget=N (training enumeration budget).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/Compilers.h"
#include "src/machine/EntryExit.h"
#include "src/sim/Interpreter.h"

using namespace pose;
using namespace pose::bench;

int main(int Argc, char **Argv) {
  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = flagValue(Argc, Argv, "budget", 200'000);
  PhaseManager PM;

  // Train the probabilistic model on the enumerated spaces (Section 6
  // uses the probabilities assembled during the enumeration experiments).
  InteractionAnalysis IA;
  {
    Enumerator E(PM, Cfg);
    for (CompiledWorkload &W : compileAllWorkloads())
      for (Function &F : W.M.Functions) {
        EnumerationResult R = E.enumerate(F);
        if (R.complete())
          IA.addFunction(R);
      }
  }
  ProbabilisticCompiler PC(PM, IA);

  std::printf("Table 7: Old Batch vs Probabilistic Compilation\n\n");
  std::printf("%-24s | %9s %7s %8s | %9s %7s %8s | %6s %6s\n", "Function",
              "Attempted", "Active", "Time(ms)", "Attempted", "Active",
              "Time(ms)", "Size", "Time");
  std::printf("%-24s | %26s | %26s | %13s\n", "",
              "     Old Compilation", "    Prob. Compilation",
              "  Prob/Old");

  uint64_t SumOldAtt = 0, SumOldAct = 0, SumProbAtt = 0, SumProbAct = 0;
  double SumOldTime = 0, SumProbTime = 0, SumSizeRatio = 0;
  size_t Functions = 0;
  double SumSpeedRatio = 0;
  size_t Programs = 0;

  for (const Workload &W : allWorkloads()) {
    // Two fresh copies of the program, one per strategy.
    Module MOld = compileMC(W.Source).M;
    Module MProb = compileMC(W.Source).M;

    for (size_t FI = 0; FI != MOld.Functions.size(); ++FI) {
      Function &FOld = MOld.Functions[FI];
      Function &FProb = MProb.Functions[FI];
      CompileStats SOld = batchCompile(PM, FOld);
      CompileStats SProb = PC.compile(FProb);
      fixEntryExit(FOld);
      fixEntryExit(FProb);
      double SizeRatio = static_cast<double>(FProb.instructionCount()) /
                         static_cast<double>(FOld.instructionCount());
      std::printf(
          "%-21s(%c) | %9llu %7llu %8.3f | %9llu %7llu %8.3f | %6.3f %6.3f\n",
          FOld.Name.c_str(), programTag(W.Name),
          static_cast<unsigned long long>(SOld.Attempted),
          static_cast<unsigned long long>(SOld.Active),
          SOld.Seconds * 1e3,
          static_cast<unsigned long long>(SProb.Attempted),
          static_cast<unsigned long long>(SProb.Active),
          SProb.Seconds * 1e3, SizeRatio,
          SOld.Seconds > 0 ? SProb.Seconds / SOld.Seconds : 0.0);
      SumOldAtt += SOld.Attempted;
      SumOldAct += SOld.Active;
      SumProbAtt += SProb.Attempted;
      SumProbAct += SProb.Active;
      SumOldTime += SOld.Seconds;
      SumProbTime += SProb.Seconds;
      SumSizeRatio += SizeRatio;
      ++Functions;
    }

    // Whole-program dynamic-instruction counts (the paper's "Speed").
    Interpreter SimOld(MOld), SimProb(MProb);
    RunResult ROld = SimOld.run("main", {});
    RunResult RProb = SimProb.run("main", {});
    if (!ROld.Ok || !RProb.Ok) {
      std::fprintf(stderr, "%s: simulation failed: %s%s\n", W.Name,
                   ROld.Error.c_str(), RProb.Error.c_str());
      return 1;
    }
    if (!ROld.sameBehavior(RProb)) {
      std::fprintf(stderr, "%s: strategies disagree on behaviour!\n",
                   W.Name);
      return 1;
    }
    double Speed = static_cast<double>(RProb.DynamicInsts) /
                   static_cast<double>(ROld.DynamicInsts);
    std::printf("%-24s   whole-program dynamic count ratio prob/old: %.3f "
                "(%llu vs %llu)\n",
                W.Name, Speed,
                static_cast<unsigned long long>(RProb.DynamicInsts),
                static_cast<unsigned long long>(ROld.DynamicInsts));
    SumSpeedRatio += Speed;
    ++Programs;
  }

  double FN = static_cast<double>(Functions);
  std::printf("\naverage: attempted %0.1f -> %0.1f, active %0.2f -> %0.2f, "
              "compile-time ratio %.3f, code-size ratio %.3f, "
              "dynamic-count ratio %.3f\n",
              SumOldAtt / FN, SumProbAtt / FN, SumOldAct / FN,
              SumProbAct / FN,
              SumOldTime > 0 ? SumProbTime / SumOldTime : 0.0,
              SumSizeRatio / FN,
              SumSpeedRatio / static_cast<double>(Programs));
  std::printf("Paper shape: probabilistic attempts ~1/5 of batch (230 -> "
              "48), compile time ~1/3, size ratio ~1.015, speed ~1.005.\n");

  // The paper's named follow-up: selection weighted by measured per-phase
  // code-size benefit (Section 6: "can be further improved by taking
  // phase benefits into account").
  {
    ProbabilisticCompiler PCB(PM, IA, /*UseBenefits=*/true);
    uint64_t Att = 0, SizeB = 0, SizeOld = 0;
    double SpeedSum = 0;
    size_t Progs = 0;
    for (const Workload &W : allWorkloads()) {
      Module MOld = compileMC(W.Source).M;
      Module MB = compileMC(W.Source).M;
      for (size_t FI = 0; FI != MOld.Functions.size(); ++FI) {
        batchCompile(PM, MOld.Functions[FI]);
        CompileStats S = PCB.compile(MB.Functions[FI]);
        Att += S.Attempted;
        fixEntryExit(MOld.Functions[FI]);
        fixEntryExit(MB.Functions[FI]);
        SizeOld += MOld.Functions[FI].instructionCount();
        SizeB += MB.Functions[FI].instructionCount();
      }
      Interpreter SimOld(MOld), SimB(MB);
      RunResult A = SimOld.run("main", {});
      RunResult B = SimB.run("main", {});
      if (A.Ok && B.Ok && A.sameBehavior(B)) {
        SpeedSum += static_cast<double>(B.DynamicInsts) /
                    static_cast<double>(A.DynamicInsts);
        ++Progs;
      }
    }
    std::printf("\nbenefit-weighted probabilistic (paper's future work): "
                "attempted %.1f/function, code-size ratio %.3f, "
                "dynamic-count ratio %.3f\n",
                static_cast<double>(Att) / FN,
                static_cast<double>(SizeB) / static_cast<double>(SizeOld),
                SpeedSum / static_cast<double>(Progs));
  }
  return 0;
}
