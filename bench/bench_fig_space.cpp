//===- bench_fig_space.cpp - Reproduces Figures 1, 2, 3, 4 and 5 --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The search-space figures, quantified per level for a chosen function:
//  Figure 1 — the naive space: 15^n attempted sequences per level;
//  Figure 2 — dormant-phase pruning: active sequences per level;
//  Figure 4 — identical-instance detection: distinct DAG nodes per level.
// Plus the two worked examples:
//  Figure 3 — two different phases producing identical code;
//  Figure 5 — register/label remapping canonicalization.
//
// Flags: --function=NAME (default pick_nearest), --budget=N, --fig3,
//        --fig5.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/SpaceStats.h"
#include "src/ir/Printer.h"
#include "src/opt/Phases.h"
#include "src/support/Str.h"

#include <string>

using namespace pose;
using namespace pose::bench;

static void figure3() {
  std::printf("Figure 3: different optimizations having the same effect\n\n");
  // Original: r[2]=1; r[3]=r[4]+r[2]
  Function A;
  A.addBlock();
  A.Blocks[0].Insts.push_back(rtl::mov(Operand::reg(2), Operand::imm(1)));
  A.Blocks[0].Insts.push_back(rtl::binary(Op::Add, Operand::reg(3),
                                          Operand::reg(4),
                                          Operand::reg(2)));
  A.Blocks[0].Insts.push_back(rtl::ret(Operand::reg(3)));
  A.recomputeCounters();
  A.State.RegsAssigned = true; // r2..r4 are hardware registers.
  Function B = A;
  std::printf("original code segment:\n%s\n", printFunction(A).c_str());

  InstructionSelectionPhase S;
  S.apply(A);
  std::printf("after instruction selection:\n%s\n",
              printFunction(A).c_str());

  // The same effect via constant propagation (part of c) followed by dead
  // assignment elimination.
  CsePhase C;
  C.apply(B);
  std::printf("after constant propagation (within c):\n%s\n",
              printFunction(B).c_str());
  DeadAssignElimPhase H;
  H.apply(B);
  std::printf("after dead assignment elimination:\n%s\n",
              printFunction(B).c_str());
  std::printf("identical instances: %s\n\n",
              canonicalize(A).Hash == canonicalize(B).Hash ? "yes" : "no");
}

static void figure5() {
  std::printf("Figure 5: different registers/labels, equivalent code\n\n");
  auto Build = [](RegNum Sum, RegNum Base, RegNum Ptr, RegNum End,
                  RegNum Tmp, int32_t L) {
    Function F;
    BasicBlock Head(L + 10);
    Head.Insts.push_back(rtl::mov(Operand::reg(Sum), Operand::imm(0)));
    Head.Insts.push_back(rtl::lea(Operand::reg(Base), Operand::global(0)));
    Head.Insts.push_back(rtl::mov(Operand::reg(Ptr), Operand::reg(Base)));
    Head.Insts.push_back(rtl::binary(Op::Add, Operand::reg(End),
                                     Operand::reg(Base),
                                     Operand::imm(4000)));
    BasicBlock Loop(L);
    Loop.Insts.push_back(rtl::load(Operand::reg(Tmp), Operand::reg(Ptr), 0));
    Loop.Insts.push_back(rtl::binary(Op::Add, Operand::reg(Sum),
                                     Operand::reg(Sum), Operand::reg(Tmp)));
    Loop.Insts.push_back(rtl::binary(Op::Add, Operand::reg(Ptr),
                                     Operand::reg(Ptr), Operand::imm(4)));
    Loop.Insts.push_back(rtl::cmp(Operand::reg(Ptr), Operand::reg(End)));
    Loop.Insts.push_back(rtl::branch(Cond::Lt, L));
    BasicBlock Tail(L + 20);
    Tail.Insts.push_back(rtl::ret(Operand::reg(Sum)));
    F.Blocks.push_back(std::move(Head));
    F.Blocks.push_back(std::move(Loop));
    F.Blocks.push_back(std::move(Tail));
    F.recomputeCounters();
    return F;
  };
  Function B = Build(10, 12, 1, 9, 8, 3); // Fig 5(b)
  Function C = Build(11, 10, 1, 9, 8, 5); // Fig 5(c)
  std::printf("(b) register allocation before code motion:\n%s\n",
              printFunction(B).c_str());
  std::printf("(c) code motion before register allocation:\n%s\n",
              printFunction(C).c_str());
  CanonicalForm FB = canonicalize(B), FC = canonicalize(C);
  std::printf("triples: (%u, %u, %08x) vs (%u, %u, %08x) -> %s\n\n",
              FB.Hash.InstCount, FB.Hash.ByteSum, FB.Hash.Crc,
              FC.Hash.InstCount, FC.Hash.ByteSum, FC.Hash.Crc,
              FB.Hash == FC.Hash ? "identical after remapping"
                                 : "DIFFERENT (bug!)");
}

int main(int Argc, char **Argv) {
  if (flagPresent(Argc, Argv, "fig3")) {
    figure3();
    return 0;
  }
  if (flagPresent(Argc, Argv, "fig5")) {
    figure5();
    return 0;
  }

  std::string Target = "pick_nearest";
  for (int I = 1; I < Argc; ++I)
    if (!std::strncmp(Argv[I], "--function=", 11))
      Target = Argv[I] + 11;

  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = flagValue(Argc, Argv, "budget", 1'000'000);
  PhaseManager PM;
  Enumerator E(PM, Cfg);

  for (CompiledWorkload &W : compileAllWorkloads()) {
    for (Function &F : W.M.Functions) {
      if (F.Name != Target)
        continue;
      EnumerationResult R = E.enumerate(F);
      std::printf("Figures 1/2/4 for %s(%c): per-level size of the "
                  "attempted tree, the dormant-pruned tree, and the DAG\n\n",
                  F.Name.c_str(), programTag(W.Info->Name));
      std::printf("%5s %22s %22s %12s\n", "Level",
                  "Fig1 naive 15^n", "Fig2 active sequences",
                  "Fig4 new DAG nodes");
      uint64_t Naive = 1;
      for (const LevelStat &L : R.Levels) {
        std::string NaiveStr =
            Naive == UINT64_MAX ? ">1.8e19" : fmtGrouped(Naive);
        std::printf("%5u %22s %22s %12s\n", L.Level, NaiveStr.c_str(),
                    fmtGrouped(L.ActiveSequences).c_str(),
                    fmtGrouped(L.NewNodes).c_str());
        if (Naive > UINT64_MAX / NumPhases)
          Naive = UINT64_MAX;
        else
          Naive *= NumPhases;
      }
      std::printf("\ntotals: %s distinct instances (DAG), %s attempted "
                  "phases, %s naive sequences at depth %u; complete=%s\n",
                  fmtGrouped(R.Nodes.size()).c_str(),
                  fmtGrouped(R.AttemptedPhases).c_str(),
                  naiveSpaceSize(R.MaxActiveLength) == UINT64_MAX
                      ? ">1.8e19"
                      : fmtGrouped(naiveSpaceSize(R.MaxActiveLength))
                            .c_str(),
                  R.MaxActiveLength, R.complete() ? "yes" : "no");
      return 0;
    }
  }
  std::fprintf(stderr, "no workload function named %s\n", Target.c_str());
  return 1;
}
