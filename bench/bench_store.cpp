//===- bench_store.cpp - Artifact store hot paths ------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Microbenchmarks of the persistent artifact store: codec throughput for
// a complete enumeration result, framing + disk round trips, and the
// end-to-end cached-drive path. The interesting comparison is the last
// one — loading a cached DAG must be orders of magnitude cheaper than
// re-enumerating, or the cache is pointless.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/store/ByteIo.h"
#include "src/store/Serialize.h"
#include "src/store/StoreDriver.h"

#include <benchmark/benchmark.h>

#include <filesystem>

using namespace pose;
using namespace pose::bench;

namespace {

const char *SumSource =
    "int f(int n){int s=0;int i=0;while(i<n){s=s+i;i=i+1;}return s;}";

EnumerationResult enumerated(const Function &F) {
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  return E.enumerate(F);
}

Function compiledSum() {
  CompileResult R = compileMC(SumSource);
  Module &M = R.M;
  return *M.functionFor(M.findGlobal("f"));
}

std::string scratchDir(const char *Name) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / Name).string();
  std::filesystem::remove_all(Dir);
  return Dir;
}

void BM_EncodeResult(benchmark::State &State) {
  Function F = compiledSum();
  EnumerationResult R = enumerated(F);
  size_t Bytes = 0;
  for (auto _ : State) {
    ByteWriter W;
    store::encodeResult(W, R);
    Bytes = W.bytes().size();
    benchmark::DoNotOptimize(W);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations() * Bytes));
  State.counters["nodes"] = static_cast<double>(R.Nodes.size());
}
BENCHMARK(BM_EncodeResult);

void BM_DecodeResult(benchmark::State &State) {
  Function F = compiledSum();
  EnumerationResult R = enumerated(F);
  ByteWriter W;
  store::encodeResult(W, R);
  for (auto _ : State) {
    ByteReader Reader(W.bytes());
    EnumerationResult Out;
    bool Ok = store::decodeResult(Reader, Out);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Out);
  }
  State.SetBytesProcessed(
      static_cast<int64_t>(State.iterations() * W.bytes().size()));
}
BENCHMARK(BM_DecodeResult);

void BM_SaveAndLoadResult(benchmark::State &State) {
  // Full framing + checksum + atomic write + read-back validation.
  Function F = compiledSum();
  EnumerationResult R = enumerated(F);
  EnumeratorConfig Cfg;
  HashTriple Root = canonicalize(F, false, Cfg.RemapRegisters).Hash;
  uint64_t Fp = store::configFingerprint(Cfg);
  store::ArtifactStore Store(scratchDir("pose-bench-store"));
  std::string Error;
  if (!Store.prepare(Error))
    State.SkipWithError(Error.c_str());
  for (auto _ : State) {
    EnumerationResult Out;
    if (!Store.saveResult(Root, Fp, R, Error))
      State.SkipWithError(Error.c_str());
    store::LoadStatus S = Store.loadResult(Root, Fp, Out, Error);
    if (S != store::LoadStatus::Hit)
      State.SkipWithError("expected a cache hit");
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_SaveAndLoadResult);

void BM_DriveFreshVsCached(benchmark::State &State) {
  // Arg 0: every drive re-enumerates (store cleared each iteration).
  // Arg 1: the first drive populates, the rest hit the cache — the ratio
  // of the two is the value of the store.
  Function F = compiledSum();
  PhaseManager PM;
  EnumeratorConfig Cfg;
  bool Cached = State.range(0) != 0;
  std::string Dir = scratchDir("pose-bench-drive");
  for (auto _ : State) {
    if (!Cached) {
      State.PauseTiming();
      std::filesystem::remove_all(Dir);
      State.ResumeTiming();
    }
    store::DriveResult D = store::driveEnumeration(PM, Cfg, F, Dir, false);
    if (!D.Ok)
      State.SkipWithError(D.Error.c_str());
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_DriveFreshVsCached)->Arg(0)->Arg(1);

void BM_EncodeCheckpoint(benchmark::State &State) {
  // Checkpoints are written on the stop path, possibly under memory
  // pressure; the encoder must not be the straw that breaks it.
  Function F = compiledSum();
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.MaxMemoryBytes = 20'000;
  Enumerator E(PM, Cfg);
  EnumerationCheckpoint Cp;
  (void)E.enumerate(F, &Cp);
  if (!Cp.Valid)
    State.SkipWithError("expected a checkpoint");
  for (auto _ : State) {
    ByteWriter W;
    store::encodeCheckpoint(W, Cp);
    benchmark::DoNotOptimize(W);
  }
}
BENCHMARK(BM_EncodeCheckpoint);

} // namespace

BENCHMARK_MAIN();
