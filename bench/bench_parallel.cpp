//===- bench_parallel.cpp - Parallel enumeration speedup ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the level-parallel enumerator against the sequential engine at
// 1/2/4/8 jobs, on real workload functions large enough for a level to
// amortize the barrier. The engines produce byte-identical DAGs (enforced
// by tests/core/parallel_enumerator_test.cpp), so this benchmark is a
// pure wall-clock comparison; speedup is bounded by the host's core count
// and by Amdahl on the single-threaded barrier commit.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/Compilers.h"
#include "src/drive/Supervisor.h"

#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>

using namespace pose;
using namespace pose::bench;

namespace {

Function workloadFunction(const char *Program, const char *Name) {
  const Workload *W = findWorkload(Program);
  CompileResult R = compileMC(W->Source);
  Module &M = R.M;
  return *M.functionFor(M.findGlobal(Name));
}

/// Enumeration of a mid-size function whose space completes, at the job
/// count given by the benchmark argument.
void BM_EnumerateJobs(benchmark::State &State) {
  Function F = workloadFunction("fft", "make_sine");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.Jobs = static_cast<unsigned>(State.range(0));
  Enumerator E(PM, Cfg);
  uint64_t Nodes = 0;
  for (auto _ : State) {
    EnumerationResult R = E.enumerate(F);
    Nodes = R.Nodes.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_EnumerateJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// A large function under a node budget: wide levels, where parallel
/// expansion matters most.
void BM_EnumerateLargeBudgeted(benchmark::State &State) {
  Function F = workloadFunction("sha", "sha_transform");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.Jobs = static_cast<unsigned>(State.range(0));
  Cfg.MaxTotalNodes = 2'000;
  Enumerator E(PM, Cfg);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.enumerate(F));
}
BENCHMARK(BM_EnumerateLargeBudgeted)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Verified enumeration: the per-attempt snapshot + verifyFunction makes
/// each work item heavier, improving the parallel fraction.
void BM_EnumerateVerifiedJobs(benchmark::State &State) {
  Function F = workloadFunction("fft", "make_sine");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.Jobs = static_cast<unsigned>(State.range(0));
  Cfg.VerifyIr = true;
  Enumerator E(PM, Cfg);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.enumerate(F));
}
BENCHMARK(BM_EnumerateVerifiedJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Whole-module batch compilation, parallel across functions.
void BM_BatchCompileModuleJobs(benchmark::State &State) {
  const Workload *W = findWorkload("jpeg");
  PhaseManager PM;
  for (auto _ : State) {
    State.PauseTiming();
    CompileResult R = compileMC(W->Source);
    State.ResumeTiming();
    benchmark::DoNotOptimize(batchCompileModule(
        PM, R.M, static_cast<unsigned>(State.range(0))));
  }
}
BENCHMARK(BM_BatchCompileModuleJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Four structurally identical mid-size functions distinguished only by
/// constants: four distinct enumeration roots of near-equal weight, so
/// the sweep's parallel speedup is not capped by one dominant function.
const char *SweepModuleSource =
    "int f0(int n){int s=3;int i=0;while(i<n){if(s>90){s=s-3;}"
    "s=s+i*2;i=i+1;}return s;}"
    "int f1(int n){int s=5;int i=0;while(i<n){if(s>91){s=s-4;}"
    "s=s+i*3;i=i+1;}return s;}"
    "int f2(int n){int s=7;int i=0;while(i<n){if(s>92){s=s-5;}"
    "s=s+i*4;i=i+1;}return s;}"
    "int f3(int n){int s=9;int i=0;while(i<n){if(s>93){s=s-6;}"
    "s=s+i*5;i=i+1;}return s;}";

/// Full supervised module sweep at --sweep-jobs=N: real posec worker
/// processes under the SubprocessPool, a fresh store per iteration so no
/// work is served from the cache. This is the tentpole number — the
/// process-level path the concurrency overhaul targets; outputs are
/// byte-identical across N (tests/drive/sweep_determinism_test.cpp), so
/// the ratio to Arg(1) is pure wall-clock speedup.
void BM_SupervisedSweepJobs(benchmark::State &State) {
  CompileResult R = compileMC(SweepModuleSource);
  const std::string Base = std::filesystem::temp_directory_path().string() +
                           "/pose-bench-sweep";
  const std::string Input = Base + ".mc";
  {
    std::ofstream Out(Input, std::ios::trunc);
    Out << SweepModuleSource;
  }
  drive::SupervisorOptions O;
  O.PosecPath = POSE_POSEC_PATH;
  O.InputPath = Input;
  O.Budget = 30'000;
  O.SweepJobs = static_cast<uint64_t>(State.range(0));
  PhaseManager PM;
  uint64_t Iter = 0;
  uint64_t Nodes = 0;
  for (auto _ : State) {
    State.PauseTiming();
    O.StoreDir = Base + "-j" + std::to_string(State.range(0)) + "-" +
                 std::to_string(Iter++);
    std::filesystem::remove_all(O.StoreDir);
    State.ResumeTiming();
    drive::SweepReport Report = superviseModule(PM, R.M, O);
    State.PauseTiming();
    Nodes = 0;
    for (const drive::JobOutcome &J : Report.Jobs)
      Nodes += J.Nodes;
    if (!Report.Error.empty() || Report.exitCode() != 0)
      State.SkipWithError("sweep failed");
    std::filesystem::remove_all(O.StoreDir);
    State.ResumeTiming();
  }
  State.counters["nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_SupervisedSweepJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
