//===- bench_parallel.cpp - Parallel enumeration speedup ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the level-parallel enumerator against the sequential engine at
// 1/2/4/8 jobs, on real workload functions large enough for a level to
// amortize the barrier. The engines produce byte-identical DAGs (enforced
// by tests/core/parallel_enumerator_test.cpp), so this benchmark is a
// pure wall-clock comparison; speedup is bounded by the host's core count
// and by Amdahl on the single-threaded barrier commit.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/Compilers.h"

#include <benchmark/benchmark.h>

using namespace pose;
using namespace pose::bench;

namespace {

Function workloadFunction(const char *Program, const char *Name) {
  const Workload *W = findWorkload(Program);
  CompileResult R = compileMC(W->Source);
  Module &M = R.M;
  return *M.functionFor(M.findGlobal(Name));
}

/// Enumeration of a mid-size function whose space completes, at the job
/// count given by the benchmark argument.
void BM_EnumerateJobs(benchmark::State &State) {
  Function F = workloadFunction("fft", "make_sine");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.Jobs = static_cast<unsigned>(State.range(0));
  Enumerator E(PM, Cfg);
  uint64_t Nodes = 0;
  for (auto _ : State) {
    EnumerationResult R = E.enumerate(F);
    Nodes = R.Nodes.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_EnumerateJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// A large function under a node budget: wide levels, where parallel
/// expansion matters most.
void BM_EnumerateLargeBudgeted(benchmark::State &State) {
  Function F = workloadFunction("sha", "sha_transform");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.Jobs = static_cast<unsigned>(State.range(0));
  Cfg.MaxTotalNodes = 2'000;
  Enumerator E(PM, Cfg);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.enumerate(F));
}
BENCHMARK(BM_EnumerateLargeBudgeted)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Verified enumeration: the per-attempt snapshot + verifyFunction makes
/// each work item heavier, improving the parallel fraction.
void BM_EnumerateVerifiedJobs(benchmark::State &State) {
  Function F = workloadFunction("fft", "make_sine");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.Jobs = static_cast<unsigned>(State.range(0));
  Cfg.VerifyIr = true;
  Enumerator E(PM, Cfg);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.enumerate(F));
}
BENCHMARK(BM_EnumerateVerifiedJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Whole-module batch compilation, parallel across functions.
void BM_BatchCompileModuleJobs(benchmark::State &State) {
  const Workload *W = findWorkload("jpeg");
  PhaseManager PM;
  for (auto _ : State) {
    State.PauseTiming();
    CompileResult R = compileMC(W->Source);
    State.ResumeTiming();
    benchmark::DoNotOptimize(batchCompileModule(
        PM, R.M, static_cast<unsigned>(State.range(0))));
  }
}
BENCHMARK(BM_BatchCompileModuleJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
