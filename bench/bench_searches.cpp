//===- bench_searches.cpp - Heuristic searches vs the exhaustive optimum ------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The experiment the paper's related work motivates (Section 2) and its
// enumeration enables for the first time: how close do non-exhaustive
// searches — genetic algorithm, hill climbing, random sampling — come to
// the true optimum, and at what cost? The exhaustive DAG supplies the
// ground-truth minimal code size per function; each heuristic runs with a
// matched evaluation budget. Also quantifies the hash-dedup enhancement
// of reference [14] (cache hits = avoided evaluations).
//
// Flags: --budget=N (exhaustive), --evals=N (heuristic budget),
//        --seed=N.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/Search.h"
#include "src/core/SpaceStats.h"

using namespace pose;
using namespace pose::bench;

int main(int Argc, char **Argv) {
  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = flagValue(Argc, Argv, "budget", 1'000'000);
  const uint64_t Evals = flagValue(Argc, Argv, "evals", 400);
  const uint64_t Seed = flagValue(Argc, Argv, "seed", 42);
  PhaseManager PM;
  Enumerator E(PM, Cfg);

  std::printf("Heuristic searches vs exhaustive optimum (code size; "
              "budget %llu evaluations each)\n\n",
              static_cast<unsigned long long>(Evals));
  std::printf("%-24s %6s %7s | %6s %6s | %6s %6s | %6s %6s | %9s\n",
              "Function", "naive", "optimal", "GA", "evals", "hill",
              "evals", "random", "evals", "dedup hits");

  size_t GaHitOpt = 0, HillHitOpt = 0, RandHitOpt = 0, Total = 0;
  for (CompiledWorkload &W : compileAllWorkloads()) {
    SequenceSearch S(PM, W.M, "main");
    for (Function &F : W.M.Functions) {
      EnumerationResult R = E.enumerate(F);
      if (!R.complete())
        continue;
      uint32_t Optimal = UINT32_MAX;
      for (const DagNode &N : R.Nodes)
        Optimal = std::min(Optimal, N.CodeSize);

      SearchConfig SC;
      SC.Seed = Seed;
      SC.MaxEvaluations = Evals;
      SC.PopulationSize = 20;
      SC.Generations = static_cast<int>(Evals / 20);
      SearchResult GA = S.geneticSearch(F, Objective::CodeSize, SC);
      SearchResult Hill = S.hillClimb(F, Objective::CodeSize, SC);
      SearchResult Rand = S.randomSearch(F, Objective::CodeSize, SC);

      std::printf("%-21s(%c) %6zu %7u | %6llu %6llu | %6llu %6llu | "
                  "%6llu %6llu | %9llu\n",
                  F.Name.c_str(), programTag(W.Info->Name),
                  F.instructionCount(), Optimal,
                  static_cast<unsigned long long>(GA.BestFitness),
                  static_cast<unsigned long long>(GA.Evaluations),
                  static_cast<unsigned long long>(Hill.BestFitness),
                  static_cast<unsigned long long>(Hill.Evaluations),
                  static_cast<unsigned long long>(Rand.BestFitness),
                  static_cast<unsigned long long>(Rand.Evaluations),
                  static_cast<unsigned long long>(
                      GA.CacheHits + Hill.CacheHits + Rand.CacheHits));
      GaHitOpt += (GA.BestFitness == Optimal);
      HillHitOpt += (Hill.BestFitness == Optimal);
      RandHitOpt += (Rand.BestFitness == Optimal);
      ++Total;
    }
  }
  std::printf("\nfunctions where the heuristic found the true optimum: "
              "GA %zu/%zu, hill climbing %zu/%zu, random %zu/%zu\n",
              GaHitOpt, Total, HillHitOpt, Total, RandHitOpt, Total);
  std::printf("Paper context (Section 2, ref [9]): the space contains "
              "enough local minima that biased sampling finds good "
              "solutions; the exhaustive DAG makes that checkable.\n");
  return 0;
}
