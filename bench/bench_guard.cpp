//===- bench_guard.cpp - PhaseGuard overhead microbenchmarks ------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the robustness layer costs along the two paths that
// matter: a disarmed guard (no verification, no faults) must stay within
// noise of a bare PhaseManager::attempt / unguarded enumeration, and the
// verify-on path shows the price of a snapshot plus verifyFunction per
// active application.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/opt/PhaseGuard.h"

#include <benchmark/benchmark.h>

using namespace pose;
using namespace pose::bench;

namespace {

Function workloadFunction(const char *Program, const char *Name) {
  const Workload *W = findWorkload(Program);
  CompileResult R = compileMC(W->Source);
  Module &M = R.M;
  return *M.functionFor(M.findGlobal(Name));
}

void BM_AttemptUnguarded(benchmark::State &State) {
  Function F = workloadFunction("jpeg", "quantize_block");
  PhaseManager PM;
  for (auto _ : State) {
    Function Copy = F;
    benchmark::DoNotOptimize(
        PM.attempt(PhaseId::InstructionSelection, Copy));
  }
}
BENCHMARK(BM_AttemptUnguarded);

void BM_AttemptGuardDisarmed(benchmark::State &State) {
  Function F = workloadFunction("jpeg", "quantize_block");
  PhaseManager PM;
  PhaseGuard Guard(PM);
  for (auto _ : State) {
    Function Copy = F;
    benchmark::DoNotOptimize(
        Guard.attempt(PhaseId::InstructionSelection, Copy));
  }
}
BENCHMARK(BM_AttemptGuardDisarmed);

void BM_AttemptGuardVerify(benchmark::State &State) {
  Function F = workloadFunction("jpeg", "quantize_block");
  PhaseManager PM;
  PhaseGuard::Options Opts;
  Opts.Verify = true;
  PhaseGuard Guard(PM, Opts);
  for (auto _ : State) {
    Function Copy = F;
    benchmark::DoNotOptimize(
        Guard.attempt(PhaseId::InstructionSelection, Copy));
  }
}
BENCHMARK(BM_AttemptGuardVerify);

void BM_EnumerateGuardDisarmed(benchmark::State &State) {
  Function F = workloadFunction("fft", "make_sine");
  PhaseManager PM;
  // The guard always sits on the enumeration path now; with no deadline,
  // memory budget, verification, or faults configured this measures the
  // pass-through cost (counter increment + governor bookkeeping).
  EnumeratorConfig Cfg;
  Enumerator E(PM, Cfg);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.enumerate(F));
}
BENCHMARK(BM_EnumerateGuardDisarmed);

void BM_EnumerateVerifyIr(benchmark::State &State) {
  Function F = workloadFunction("fft", "make_sine");
  PhaseManager PM;
  EnumeratorConfig Cfg;
  Cfg.VerifyIr = true;
  Enumerator E(PM, Cfg);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.enumerate(F));
}
BENCHMARK(BM_EnumerateVerifyIr);

void BM_EnumerateWithGovernor(benchmark::State &State) {
  Function F = workloadFunction("fft", "make_sine");
  PhaseManager PM;
  // Armed but never-tripping limits: the per-level governor check cost.
  EnumeratorConfig Cfg;
  Cfg.DeadlineMs = 3'600'000;
  Cfg.MaxMemoryBytes = uint64_t(1) << 40;
  Enumerator E(PM, Cfg);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.enumerate(F));
}
BENCHMARK(BM_EnumerateWithGovernor);

} // namespace

BENCHMARK_MAIN();
