//===- bench_ablation.cpp - Pruning-technique ablation --------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the paper's Section 4.2.1 canonicalization: how much extra
// pruning does register remapping buy? "Although a complete live range
// register remapping might detect more instances as being equivalent …
// this approach of detecting equivalent function instances enables us to
// do more aggressive pruning of the search space." Enumerates each
// function twice — with and without register remapping — and compares
// distinct instances and attempted phases. (Label resolution cannot be
// ablated: raw label numbers carry no meaning.)
//
// Flags: --budget=N.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/Interaction.h"

using namespace pose;
using namespace pose::bench;

int main(int Argc, char **Argv) {
  EnumeratorConfig With;
  With.MaxLevelSequences = flagValue(Argc, Argv, "budget", 100'000);
  EnumeratorConfig Without = With;
  Without.RemapRegisters = false;

  PhaseManager PM;
  Enumerator EWith(PM, With), EWithout(PM, Without);

  std::printf("Ablation: identical-instance detection with vs without "
              "register remapping (Section 4.2.1)\n\n");
  std::printf("%-24s | %9s %11s | %9s %11s | %7s\n", "Function",
              "instances", "attempted", "instances", "attempted",
              "blow-up");
  std::printf("%-24s | %21s | %21s |\n", "", "     with remapping",
              "   without remapping");

  uint64_t SumWith = 0, SumWithout = 0;
  size_t Counted = 0;
  for (CompiledWorkload &W : compileAllWorkloads()) {
    for (Function &F : W.M.Functions) {
      EnumerationResult RW = EWith.enumerate(F);
      EnumerationResult RO = EWithout.enumerate(F);
      std::string Note;
      if (!RW.complete() || !RO.complete())
        Note = !RO.complete() ? " (no-remap exceeded budget)"
                            : " (exceeded budget)";
      double Blowup = static_cast<double>(RO.Nodes.size()) /
                      static_cast<double>(RW.Nodes.size());
      std::printf("%-21s(%c) | %9zu %11llu | %9zu %11llu | %6.2fx%s\n",
                  F.Name.c_str(), programTag(W.Info->Name),
                  RW.Nodes.size(),
                  static_cast<unsigned long long>(RW.AttemptedPhases),
                  RO.Nodes.size(),
                  static_cast<unsigned long long>(RO.AttemptedPhases),
                  Blowup, Note.c_str());
      if (RW.complete() && RO.complete()) {
        SumWith += RW.Nodes.size();
        SumWithout += RO.Nodes.size();
        ++Counted;
      }
    }
  }
  std::printf("\ntotals over %zu fully-enumerated functions: %llu vs %llu "
              "instances (%.2fx more without remapping)\n",
              Counted, static_cast<unsigned long long>(SumWith),
              static_cast<unsigned long long>(SumWithout),
              SumWith ? static_cast<double>(SumWithout) /
                            static_cast<double>(SumWith)
                      : 0.0);

  // Second experiment: independence-based edge prediction (the paper's
  // Section 7 future work), trained per function on the ground truth and
  // validated to reproduce the identical DAG.
  std::printf("\nIndependence pruning: optimizer attempts saved by "
              "predicting always-commuting pairs\n\n");
  std::printf("%-24s %11s %11s %10s %7s\n", "Function", "attempts",
              "w/ pruning", "predicted", "saved");
  uint64_t SumAtt = 0, SumPruned = 0;
  for (CompiledWorkload &W : compileAllWorkloads()) {
    for (Function &F : W.M.Functions) {
      EnumerationResult Truth = EWith.enumerate(F);
      if (!Truth.complete())
        continue;
      InteractionAnalysis IA;
      IA.addFunction(Truth);
      EnumeratorConfig Pruned = With;
      Pruned.UseIndependencePruning = true;
      for (int X = 0; X != NumPhases; ++X)
        for (int Y = 0; Y != NumPhases; ++Y)
          Pruned.TrainedIndependence[X][Y] =
              IA.alwaysIndependent(phaseByIndex(X), phaseByIndex(Y));
      Enumerator EPruned(PM, Pruned);
      EnumerationResult R = EPruned.enumerate(F);
      bool SameSize = R.Nodes.size() == Truth.Nodes.size();
      std::printf("%-21s(%c) %11llu %11llu %10llu %6.1f%%%s\n",
                  F.Name.c_str(), programTag(W.Info->Name),
                  static_cast<unsigned long long>(Truth.AttemptedPhases),
                  static_cast<unsigned long long>(R.AttemptedPhases),
                  static_cast<unsigned long long>(R.PredictedEdges),
                  100.0 *
                      (1.0 - static_cast<double>(R.AttemptedPhases) /
                                 static_cast<double>(Truth.AttemptedPhases)),
                  SameSize ? "" : "  DAG MISMATCH!");
      SumAtt += Truth.AttemptedPhases;
      SumPruned += R.AttemptedPhases;
    }
  }
  std::printf("\ntotals: %llu -> %llu optimizer attempts (%.1f%% saved), "
              "identical spaces\n",
              static_cast<unsigned long long>(SumAtt),
              static_cast<unsigned long long>(SumPruned),
              100.0 * (1.0 - static_cast<double>(SumPruned) /
                                 static_cast<double>(SumAtt)));
  return 0;
}
