//===- BenchCommon.h - Shared experiment-driver helpers --------*- C++ -*-===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment drivers in bench/: compiling the
/// workload suite, enumerating every function, and tiny flag parsing.
/// Each bench binary regenerates one table or figure of the paper; see
/// DESIGN.md for the complete index.
///
//===----------------------------------------------------------------------===//

#ifndef POSE_BENCH_BENCHCOMMON_H
#define POSE_BENCH_BENCHCOMMON_H

#include "src/core/Enumerator.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace pose {
namespace bench {

/// One workload program compiled to RTL.
struct CompiledWorkload {
  const Workload *Info = nullptr;
  Module M;
};

/// Compiles all six workloads, aborting loudly on any diagnostic.
inline std::vector<CompiledWorkload> compileAllWorkloads() {
  std::vector<CompiledWorkload> Out;
  for (const Workload &W : allWorkloads()) {
    CompileResult R = compileMC(W.Source);
    if (!R.ok()) {
      std::fprintf(stderr, "workload %s failed to compile:\n%s", W.Name,
                   R.diagText().c_str());
      std::exit(1);
    }
    CompiledWorkload C;
    C.Info = &W;
    C.M = std::move(R.M);
    Out.push_back(std::move(C));
  }
  return Out;
}

/// Single-letter program tag used in the paper's function names
/// ("main(b)" for bitcount's main, …).
inline char programTag(const std::string &Name) {
  if (Name == "bitcount")
    return 'b';
  if (Name == "dijkstra")
    return 'd';
  if (Name == "fft")
    return 'f';
  if (Name == "jpeg")
    return 'j';
  if (Name == "sha")
    return 'h';
  if (Name == "stringsearch")
    return 's';
  return '?';
}

/// Returns the integer value of --flag=N (or Default).
inline uint64_t flagValue(int Argc, char **Argv, const char *Flag,
                          uint64_t Default) {
  const std::string Prefix = std::string("--") + Flag + "=";
  for (int I = 1; I < Argc; ++I)
    if (!std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()))
      return std::strtoull(Argv[I] + Prefix.size(), nullptr, 10);
  return Default;
}

/// Returns true if --flag is present.
inline bool flagPresent(int Argc, char **Argv, const char *Flag) {
  const std::string Name = std::string("--") + Flag;
  for (int I = 1; I < Argc; ++I)
    if (Name == Argv[I])
      return true;
  return false;
}

} // namespace bench
} // namespace pose

#endif // POSE_BENCH_BENCHCOMMON_H
