//===- bench_table4_6.cpp - Reproduces Tables 4, 5 and 6 ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tables 4-6: weighted probabilities of enabling, disabling, and
// independence interactions between phases, computed over the enumerated
// spaces of every completely-enumerated workload function (Section 5).
//
// Flags: --budget=N.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/Interaction.h"

using namespace pose;
using namespace pose::bench;

int main(int Argc, char **Argv) {
  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = flagValue(Argc, Argv, "budget", 1'000'000);
  PhaseManager PM;
  Enumerator E(PM, Cfg);
  InteractionAnalysis IA;

  size_t Used = 0, Skipped = 0;
  for (CompiledWorkload &W : compileAllWorkloads()) {
    for (Function &F : W.M.Functions) {
      EnumerationResult R = E.enumerate(F);
      if (!R.complete()) {
        ++Skipped;
        continue;
      }
      IA.addFunction(R);
      ++Used;
    }
  }
  std::printf("Interaction analysis over %zu exhaustively enumerated "
              "functions (%zu skipped as too big).\n\n",
              Used, Skipped);

  std::printf("Table 4: Enabling Interaction between Optimization Phases\n"
              "(row y, column x: probability that x enables y; St = active "
              "at start)\n\n%s\n",
              IA.renderTable(InteractionAnalysis::TableKind::Enabling)
                  .c_str());
  std::printf("Table 5: Disabling Interaction between Optimization Phases\n"
              "(row y, column x: probability that x disables y)\n\n%s\n",
              IA.renderTable(InteractionAnalysis::TableKind::Disabling)
                  .c_str());
  std::printf("Table 6: Independence Relationship between Optimization "
              "Phases\n(symmetric; blank: never consecutively active or "
              "> 0.995)\n\n%s\n",
              IA.renderTable(InteractionAnalysis::TableKind::Independence)
                  .c_str());

  std::printf(
      "Paper shape checks:\n"
      "  s and c always active at the start (St column = 1.00)\n"
      "  s frequently enabled by k (register moves collapse)\n"
      "  control-flow phases (b) never enabled by k\n"
      "  c and k always disable o (they force register assignment)\n"
      "  phases are usually disabled by themselves, not others\n");
  return 0;
}
