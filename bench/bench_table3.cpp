//===- bench_table3.cpp - Reproduces Table 3 ----------------------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 3, "Function-Level Search Space Statistics for MiBench Benchmarks":
// for every function of the six workloads, exhaustively enumerate the
// phase-order space and report Insts, Blk, Brch, Loop, Fn inst, Attempted
// Phases, Len, CF, Leaf, and the leaf code-size range. Functions whose
// per-level active-sequence count exceeds the budget (default one million,
// as in the paper) are marked N/A, exactly like fft_float and main(f) in
// the original.
//
// Flags: --budget=N (per-level active sequences), --list-phases.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/SpaceStats.h"
#include "src/support/Str.h"

#include <algorithm>
#include <chrono>

using namespace pose;
using namespace pose::bench;

int main(int Argc, char **Argv) {
  if (flagPresent(Argc, Argv, "list-phases")) {
    std::printf("Id  Optimization Phase (Table 1)\n");
    for (int I = 0; I != NumPhases; ++I)
      std::printf(" %c  %s\n", phaseCode(phaseByIndex(I)),
                  phaseName(phaseByIndex(I)));
    return 0;
  }

  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = flagValue(Argc, Argv, "budget", 1'000'000);
  PhaseManager PM;
  Enumerator E(PM, Cfg);

  std::printf("Table 3: Function-Level Search Space Statistics "
              "(budget: %llu active sequences per level)\n\n",
              static_cast<unsigned long long>(Cfg.MaxLevelSequences));
  std::printf("%-24s %6s %4s %5s %5s %9s %11s %4s %4s %6s %6s %6s %7s\n",
              "Function", "Insts", "Blk", "Brch", "Loop", "Fn inst",
              "Attempt", "Len", "CF", "Leaf", "Max", "Min", "% Diff");

  std::vector<SpaceStats> Rows;
  double TotalSeconds = 0;
  size_t Completed = 0, Total = 0;
  for (CompiledWorkload &W : compileAllWorkloads()) {
    for (Function &F : W.M.Functions) {
      auto T0 = std::chrono::steady_clock::now();
      EnumerationResult R = E.enumerate(F);
      TotalSeconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - T0)
                          .count();
      SpaceStats S = computeSpaceStats(F, R);
      S.Name = F.Name + "(" + programTag(W.Info->Name) + ")";
      Rows.push_back(S);
      ++Total;
      Completed += S.complete();
    }
  }

  // The paper sorts by unoptimized instruction count, descending.
  std::sort(Rows.begin(), Rows.end(),
            [](const SpaceStats &A, const SpaceStats &B) {
              return A.Insts > B.Insts;
            });

  double SumDiff = 0;
  size_t DiffCount = 0;
  for (const SpaceStats &S : Rows) {
    if (!S.complete()) {
      std::printf("%-24s %6u %4u %5u %5u %9s %11s %4s %4s %6s %6s %6s %7s\n",
                  S.Name.c_str(), S.Insts, S.Blocks, S.Branches, S.Loops,
                  "N/A", "N/A", "N/A", "N/A", "N/A", "N/A", "N/A", "N/A");
      continue;
    }
    std::printf(
        "%-24s %6u %4u %5u %5u %9llu %11llu %4u %4llu %6llu %6u %6u %7.1f\n",
        S.Name.c_str(), S.Insts, S.Blocks, S.Branches, S.Loops,
        static_cast<unsigned long long>(S.FnInstances),
        static_cast<unsigned long long>(S.AttemptedPhases), S.MaxActiveLen,
        static_cast<unsigned long long>(S.DistinctControlFlows),
        static_cast<unsigned long long>(S.LeafInstances), S.LeafCodeSizeMax,
        S.LeafCodeSizeMin, S.codeSizeDiffPercent());
    SumDiff += S.codeSizeDiffPercent();
    ++DiffCount;
  }

  std::printf("\nEnumerated %zu/%zu functions completely in %.1f s total.\n",
              Completed, Total, TotalSeconds);
  if (DiffCount)
    std::printf("Average best-to-worst leaf code-size gap: %.1f%% "
                "(paper: 37.8%%).\n",
                SumDiff / static_cast<double>(DiffCount));
  std::printf("Paper shape check: enumeration completes for ~all functions; "
              "distinct instances << attempted sequences; few leaves.\n");
  return 0;
}
