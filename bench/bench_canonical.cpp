//===- bench_canonical.cpp - Canonicalization fast path vs reference -----------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the zero-allocation canonicalization fast path (dense remap
// arrays + one slicing-by-8 CRC pass over a preallocated buffer) against
// the original map-based byte-at-a-time implementation, which is kept in
// the tree as the differential oracle. Canonicalization runs once per
// attempted phase application, so this ratio multiplies through every
// enumeration the project runs; the fast path is required to be >= 2x on
// the workload suite (tracked by bench/check_regression.py in CI).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/Canonical.h"

#include <benchmark/benchmark.h>

using namespace pose;
using namespace pose::bench;

namespace {

/// Every function of the six-workload suite, the population the
/// enumerator actually canonicalizes.
std::vector<Function> &suite() {
  static std::vector<Function> Fns = [] {
    std::vector<Function> Out;
    for (CompiledWorkload &W : compileAllWorkloads())
      for (Function &F : W.M.Functions)
        Out.push_back(F);
    return Out;
  }();
  return Fns;
}

/// Reference implementation over the whole suite: the honest baseline.
void BM_CanonicalizeReferenceSuite(benchmark::State &State) {
  std::vector<Function> &Fns = suite();
  uint64_t Insts = 0;
  for (auto _ : State) {
    Insts = 0;
    for (const Function &F : Fns) {
      CanonicalForm C = canonicalizeReference(F);
      Insts += C.Hash.InstCount;
      benchmark::DoNotOptimize(C);
    }
  }
  State.counters["insts"] = static_cast<double>(Insts);
  State.counters["fns"] = static_cast<double>(Fns.size());
}
BENCHMARK(BM_CanonicalizeReferenceSuite);

/// Fast path over the whole suite through one reused scratch — the
/// enumerator's steady state (one scratch per worker, zero allocation).
void BM_CanonicalizeFastSuite(benchmark::State &State) {
  std::vector<Function> &Fns = suite();
  CanonicalScratch Scratch;
  uint64_t Insts = 0;
  for (auto _ : State) {
    Insts = 0;
    for (const Function &F : Fns) {
      CanonicalForm C = canonicalize(F, Scratch);
      Insts += C.Hash.InstCount;
      benchmark::DoNotOptimize(C);
    }
  }
  State.counters["insts"] = static_cast<double>(Insts);
  State.counters["fns"] = static_cast<double>(Fns.size());
}
BENCHMARK(BM_CanonicalizeFastSuite);

/// Cold fast path: a fresh scratch each call, measuring what a caller
/// without scratch reuse (the convenience overload) pays.
void BM_CanonicalizeFastColdSuite(benchmark::State &State) {
  std::vector<Function> &Fns = suite();
  for (auto _ : State)
    for (const Function &F : Fns)
      benchmark::DoNotOptimize(canonicalize(F));
}
BENCHMARK(BM_CanonicalizeFastColdSuite);

/// KeepBytes mode (paranoid exact comparison): the buffer is copied out,
/// so this bounds the fast path's advantage from below.
void BM_CanonicalizeFastKeepBytes(benchmark::State &State) {
  std::vector<Function> &Fns = suite();
  CanonicalScratch Scratch;
  for (auto _ : State)
    for (const Function &F : Fns)
      benchmark::DoNotOptimize(
          canonicalize(F, Scratch, /*KeepBytes=*/true));
}
BENCHMARK(BM_CanonicalizeFastKeepBytes);

/// Single large function (sha_transform), reference vs fast, for a
/// per-function view uncontaminated by the small functions in the suite.
void BM_CanonicalizeReferenceSha(benchmark::State &State) {
  const Workload *W = findWorkload("sha");
  CompileResult R = compileMC(W->Source);
  Function &F = *R.M.functionFor(R.M.findGlobal("sha_transform"));
  for (auto _ : State)
    benchmark::DoNotOptimize(canonicalizeReference(F));
}
BENCHMARK(BM_CanonicalizeReferenceSha);

void BM_CanonicalizeFastSha(benchmark::State &State) {
  const Workload *W = findWorkload("sha");
  CompileResult R = compileMC(W->Source);
  Function &F = *R.M.functionFor(R.M.findGlobal("sha_transform"));
  CanonicalScratch Scratch;
  for (auto _ : State)
    benchmark::DoNotOptimize(canonicalize(F, Scratch));
}
BENCHMARK(BM_CanonicalizeFastSha);

} // namespace

BENCHMARK_MAIN();
