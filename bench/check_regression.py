#!/usr/bin/env python3
"""Compare benchmark results against the committed baseline ratios.

Usage:
    check_regression.py --baseline bench/baseline_ratios.json \
        BENCH_canonical.json BENCH_parallel.json

Each benchmark JSON is google-benchmark ``--benchmark_format=json``
output. The baseline file defines speedup ratios (numerator benchmark
time / denominator benchmark time) and the value each ratio had when it
was committed. Absolute times vary with the host, so only ratios are
checked: a run fails when a measured ratio falls more than ``tolerance``
below its committed baseline. Ratios marked ``min_cores`` are skipped on
hosts too small to express the speedup at all.
"""

import argparse
import json
import os
import sys


def load_times(paths):
    """Maps benchmark name -> real_time (ns) across all result files."""
    times = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for b in data.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            times[b["name"]] = float(b["real_time"])
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="baseline ratios JSON (bench/baseline_ratios.json)")
    ap.add_argument("results", nargs="+",
                    help="google-benchmark JSON result files")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    tolerance = float(baseline.get("tolerance", 0.25))
    times = load_times(args.results)
    cores = os.cpu_count() or 1

    failed = []
    for r in baseline["ratios"]:
        name = r["name"]
        if cores < int(r.get("min_cores", 1)):
            print(f"SKIP {name}: needs >= {r['min_cores']} cores, "
                  f"host has {cores}")
            continue
        num = times.get(r["numerator"])
        den = times.get(r["denominator"])
        if num is None or den is None:
            missing = r["numerator"] if num is None else r["denominator"]
            print(f"FAIL {name}: benchmark '{missing}' not found in results")
            failed.append(name)
            continue
        measured = num / den
        floor = float(r["baseline"]) * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(f"{'FAIL' if measured < floor else 'PASS'} {name}: "
              f"measured {measured:.2f}x, baseline {r['baseline']:.2f}x, "
              f"floor {floor:.2f}x ({verdict})")
        if measured < floor:
            failed.append(name)

    if failed:
        print(f"\n{len(failed)} ratio(s) regressed by more than "
              f"{tolerance:.0%}: {', '.join(failed)}")
        return 1
    print("\nall ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
