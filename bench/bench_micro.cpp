//===- bench_micro.cpp - Microbenchmarks of the hot paths ---------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the operations the exhaustive
// search spends its time in: canonicalization (hashing), phase attempts,
// liveness analysis, whole-function enumeration, and batch compilation.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/analysis/Liveness.h"
#include "src/core/Compilers.h"
#include "src/support/Crc32.h"

#include <benchmark/benchmark.h>

using namespace pose;
using namespace pose::bench;

namespace {

Function workloadFunction(const char *Program, const char *Name) {
  const Workload *W = findWorkload(Program);
  CompileResult R = compileMC(W->Source);
  Module &M = R.M;
  return *M.functionFor(M.findGlobal(Name));
}

void BM_Crc32(benchmark::State &State) {
  std::vector<uint8_t> Data(4096);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<uint8_t>(I * 31);
  for (auto _ : State)
    benchmark::DoNotOptimize(crc32(Data));
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Data.size()));
}
BENCHMARK(BM_Crc32);

void BM_Canonicalize(benchmark::State &State) {
  Function F = workloadFunction("sha", "sha_transform");
  for (auto _ : State)
    benchmark::DoNotOptimize(canonicalize(F));
}
BENCHMARK(BM_Canonicalize);

void BM_Liveness(benchmark::State &State) {
  Function F = workloadFunction("dijkstra", "dijkstra");
  for (auto _ : State) {
    Cfg C = Cfg::build(F);
    Liveness LV(F, C);
    benchmark::DoNotOptimize(LV.liveOut(0));
  }
}
BENCHMARK(BM_Liveness);

void BM_AttemptInstructionSelection(benchmark::State &State) {
  Function F = workloadFunction("jpeg", "quantize_block");
  PhaseManager PM;
  for (auto _ : State) {
    Function Copy = F;
    benchmark::DoNotOptimize(
        PM.attempt(PhaseId::InstructionSelection, Copy));
  }
}
BENCHMARK(BM_AttemptInstructionSelection);

void BM_BatchCompile(benchmark::State &State) {
  Function F = workloadFunction("stringsearch", "bmh_search");
  PhaseManager PM;
  for (auto _ : State) {
    Function Copy = F;
    benchmark::DoNotOptimize(batchCompile(PM, Copy));
  }
}
BENCHMARK(BM_BatchCompile);

void BM_EnumerateSmallFunction(benchmark::State &State) {
  Function F = workloadFunction("fft", "make_sine");
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  for (auto _ : State)
    benchmark::DoNotOptimize(E.enumerate(F));
}
BENCHMARK(BM_EnumerateSmallFunction);

} // namespace

BENCHMARK_MAIN();
