//===- bench_cf_inference.cpp - Section 7's dynamic-count inference ------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Implements and validates the paper's Section 7 proposal: evaluating the
// dynamic instruction count of every enumerated instance by simulating
// only one representative per distinct control flow ("these counts could
// be used to prune function instances from being simulated"). Reports,
// per function: instances, control-flow classes, simulations performed,
// the implied speedup, and an exactness check of the inferred counts
// against full simulation on a sample.
//
// Flags: --budget=N, --verify-sample=N (instances fully simulated for
// cross-checking; default 25 per function).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "src/core/CfInference.h"
#include "src/core/SpaceStats.h"
#include "src/sim/Interpreter.h"
#include "src/support/Rng.h"

using namespace pose;
using namespace pose::bench;

int main(int Argc, char **Argv) {
  EnumeratorConfig Cfg;
  Cfg.MaxLevelSequences = flagValue(Argc, Argv, "budget", 200'000);
  const uint64_t Sample = flagValue(Argc, Argv, "verify-sample", 25);
  PhaseManager PM;
  Enumerator E(PM, Cfg);

  std::printf("Section 7: inferring dynamic instruction counts across "
              "control-flow classes\n\n");
  std::printf("%-24s %9s %4s %11s %8s | %10s %10s %9s\n", "Function",
              "instances", "CF", "simulations", "speedup", "best dyn",
              "worst dyn", "verified");

  size_t TotalInstances = 0, TotalSims = 0;
  for (CompiledWorkload &W : compileAllWorkloads()) {
    for (Function &F : W.M.Functions) {
      EnumerationResult R = E.enumerate(F);
      if (!R.complete())
        continue;
      DagPaths Paths(R);
      CfCountEvaluator Eval(W.M, "main", F.Name, F, PM);

      uint64_t Best = UINT64_MAX, Worst = 0;
      std::vector<uint64_t> Counts(R.Nodes.size(), 0);
      bool AllValid = true;
      for (uint32_t Id = 0; Id != R.Nodes.size(); ++Id) {
        CfCountEvaluator::Count C = Eval.evaluate(R, Paths, Id);
        AllValid &= C.Valid;
        if (!C.Valid)
          continue;
        Counts[Id] = C.Dynamic;
        Best = std::min(Best, C.Dynamic);
        Worst = std::max(Worst, C.Dynamic);
      }

      // Cross-check a random sample against full simulation.
      Rng Rand(1234);
      size_t Verified = 0, Mismatches = 0;
      Interpreter Sim(W.M);
      for (uint64_t K = 0; K != Sample; ++K) {
        uint32_t Id =
            static_cast<uint32_t>(Rand.below(R.Nodes.size()));
        Function Inst = Paths.materialize(F, PM, Id);
        Sim.overrideFunction(F.Name, &Inst);
        RunResult Truth = Sim.run("main", {});
        Sim.overrideFunction(F.Name, nullptr);
        if (!Truth.Ok)
          continue;
        ++Verified;
        Mismatches += (Truth.DynamicInsts != Counts[Id]);
      }

      double Speedup = Eval.simulations()
                           ? static_cast<double>(R.Nodes.size()) /
                                 static_cast<double>(Eval.simulations())
                           : 0.0;
      std::printf("%-21s(%c) %9zu %4zu %11zu %7.1fx | %10llu %10llu "
                  "%6zu/%zu%s\n",
                  F.Name.c_str(), programTag(W.Info->Name),
                  R.Nodes.size(),
                  static_cast<size_t>(
                      computeSpaceStats(F, R).DistinctControlFlows),
                  Eval.simulations(), Speedup,
                  static_cast<unsigned long long>(Best),
                  static_cast<unsigned long long>(Worst), Verified,
                  static_cast<size_t>(Sample),
                  Mismatches ? " MISMATCH!" : "");
      if (Mismatches)
        return 1;
      TotalInstances += R.Nodes.size();
      TotalSims += Eval.simulations();
      (void)AllValid;
    }
  }
  std::printf("\ntotals: %zu instances evaluated with %zu simulations "
              "(%.1fx fewer)\n",
              TotalInstances, TotalSims,
              TotalSims ? static_cast<double>(TotalInstances) /
                              static_cast<double>(TotalSims)
                        : 0.0);
  std::printf("Every sampled inference matched full simulation exactly.\n");
  return 0;
}
