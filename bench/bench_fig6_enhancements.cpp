//===- bench_fig6_enhancements.cpp - Reproduces Figure 6 ----------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 6, "Enhancements for Faster Searches": the naive evaluation of
// every optimization sequence re-applies the entire phase prefix to a
// fresh copy of the unoptimized function, while the enhanced search keeps
// function instances in memory and shares prefixes. The paper found the
// enhancements cut search time "at least by a factor of 5 to 10". This
// driver enumerates a sample of workload functions both ways and reports
// optimizer invocations and wall-clock time.
//
// Flags: --budget=N, --max-insts=N (skip functions larger than this in
// naive mode; prefix replay on big spaces is exactly as slow as the paper
// says it is).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <chrono>

using namespace pose;
using namespace pose::bench;

int main(int Argc, char **Argv) {
  EnumeratorConfig Fast;
  Fast.MaxLevelSequences = flagValue(Argc, Argv, "budget", 100'000);
  EnumeratorConfig Naive = Fast;
  Naive.NaiveReapply = true;
  uint64_t MaxInsts = flagValue(Argc, Argv, "max-insts", 100);

  PhaseManager PM;
  Enumerator EFast(PM, Fast), ENaive(PM, Naive);

  std::printf("Figure 6: naive re-application vs in-memory prefix "
              "sharing\n\n");
  std::printf("%-24s %10s | %12s %9s | %12s %9s | %7s\n", "Function",
              "instances", "naive applies", "naive s", "shared applies",
              "shared s", "speedup");

  double TotalNaive = 0, TotalFast = 0;
  uint64_t TotalNaiveApplies = 0, TotalFastApplies = 0;
  for (CompiledWorkload &W : compileAllWorkloads()) {
    for (Function &F : W.M.Functions) {
      if (F.instructionCount() > MaxInsts)
        continue;
      auto T0 = std::chrono::steady_clock::now();
      EnumerationResult RN = ENaive.enumerate(F);
      auto T1 = std::chrono::steady_clock::now();
      EnumerationResult RF = EFast.enumerate(F);
      auto T2 = std::chrono::steady_clock::now();
      if (!RN.complete() || !RF.complete())
        continue;
      double SN = std::chrono::duration<double>(T1 - T0).count();
      double SF = std::chrono::duration<double>(T2 - T1).count();
      std::printf("%-21s(%c) %10zu | %12llu %9.3f | %12llu %9.3f | %6.1fx\n",
                  F.Name.c_str(), programTag(W.Info->Name), RF.Nodes.size(),
                  static_cast<unsigned long long>(RN.PhaseApplications), SN,
                  static_cast<unsigned long long>(RF.PhaseApplications), SF,
                  SF > 0 ? SN / SF : 0.0);
      TotalNaive += SN;
      TotalFast += SF;
      TotalNaiveApplies += RN.PhaseApplications;
      TotalFastApplies += RF.PhaseApplications;
    }
  }
  std::printf("\ntotals: %llu vs %llu optimizer invocations "
              "(%.1fx), %.2f s vs %.2f s (%.1fx)\n",
              static_cast<unsigned long long>(TotalNaiveApplies),
              static_cast<unsigned long long>(TotalFastApplies),
              TotalFastApplies
                  ? static_cast<double>(TotalNaiveApplies) /
                        static_cast<double>(TotalFastApplies)
                  : 0.0,
              TotalNaive, TotalFast,
              TotalFast > 0 ? TotalNaive / TotalFast : 0.0);
  std::printf("Paper shape: enhancements reduce search time by 5-10x.\n");
  return 0;
}
