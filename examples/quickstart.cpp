//===- quickstart.cpp - Five-minute tour of the POSE library ------------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Compile a small MC function, exhaustively enumerate its optimization
// phase order space, and inspect the result: how many distinct function
// instances exist, how the space converges, and how much the best and
// worst phase orderings differ.
//
//   $ ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "src/core/Enumerator.h"
#include "src/core/SpaceStats.h"
#include "src/frontend/Compile.h"
#include "src/ir/Printer.h"
#include "src/opt/PhaseManager.h"

#include <cstdio>

using namespace pose;

int main() {
  // 1. Compile an MC function to naive RTL (the "unoptimized instance").
  const char *Source =
      "int dot3(int n) {\n"
      "  int s = 0;\n"
      "  int i = 0;\n"
      "  while (i < n) { s = s + i * 3; i = i + 1; }\n"
      "  return s;\n"
      "}\n";
  CompileResult CR = compileMC(Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "compile error:\n%s", CR.diagText().c_str());
    return 1;
  }
  Function &F = *CR.M.functionFor(CR.M.findGlobal("dot3"));
  std::printf("unoptimized RTL (%zu instructions):\n%s\n",
              F.instructionCount(), printFunction(F).c_str());

  // 2. Exhaustively enumerate every phase ordering's outcome.
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  EnumerationResult R = E.enumerate(F);
  SpaceStats S = computeSpaceStats(F, R);

  std::printf("phase order space: %llu distinct function instances, "
              "%llu attempted phases, %s\n",
              static_cast<unsigned long long>(S.FnInstances),
              static_cast<unsigned long long>(S.AttemptedPhases),
              R.complete() ? "exhaustively enumerated" : "budget exceeded");
  std::printf("longest active sequence: %u phases "
              "(the attempted space would hold 15^%u orderings)\n",
              S.MaxActiveLen, S.MaxActiveLen);
  std::printf("leaf instances (no phase can improve further): %llu\n",
              static_cast<unsigned long long>(S.LeafInstances));
  std::printf("leaf code size: best %u, worst %u instructions "
              "(%.1f%% apart)\n\n",
              S.LeafCodeSizeMin, S.LeafCodeSizeMax,
              S.codeSizeDiffPercent());

  // 3. Show the space level by level: exponential tree, tamed.
  std::printf("%5s %12s %12s\n", "level", "sequences", "new instances");
  for (const LevelStat &L : R.Levels)
    std::printf("%5u %12llu %12llu\n", L.Level,
                static_cast<unsigned long long>(L.ActiveSequences),
                static_cast<unsigned long long>(L.NewNodes));
  return 0;
}
