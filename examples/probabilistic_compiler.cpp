//===- probabilistic_compiler.cpp - Figure 8's compiler in action --------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Train the probabilistic batch compiler on five workloads, then compile
// the sixth with it — cross-validation the paper's Section 6 leaves as
// future work. Reports attempted/active phases, code size, and dynamic
// instruction counts against the fixed-order batch compiler.
//
//   $ ./examples/probabilistic_compiler [held-out-workload]  (default: sha)
//
//===----------------------------------------------------------------------===//

#include "src/core/Compilers.h"
#include "src/frontend/Compile.h"
#include "src/machine/EntryExit.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace pose;

int main(int Argc, char **Argv) {
  const char *HeldOut = Argc > 1 ? Argv[1] : "sha";
  if (!findWorkload(HeldOut)) {
    std::fprintf(stderr, "unknown workload '%s'\n", HeldOut);
    return 1;
  }

  // Train on everything except the held-out program.
  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  InteractionAnalysis IA;
  for (const Workload &W : allWorkloads()) {
    if (!std::strcmp(W.Name, HeldOut))
      continue;
    CompileResult CR = compileMC(W.Source);
    for (Function &F : CR.M.Functions) {
      EnumerationResult R = E.enumerate(F);
      if (R.complete())
        IA.addFunction(R);
    }
  }
  std::printf("trained on %zu functions from the other five programs\n\n",
              IA.functionCount());

  // Compile the held-out program both ways.
  const Workload *W = findWorkload(HeldOut);
  Module MBatch = compileMC(W->Source).M;
  Module MProb = compileMC(W->Source).M;
  ProbabilisticCompiler PC(PM, IA);

  std::printf("%-22s | %9s %6s | %9s %6s\n", "Function", "batch att",
              "active", "prob att", "active");
  uint64_t SizeBatch = 0, SizeProb = 0;
  for (size_t I = 0; I != MBatch.Functions.size(); ++I) {
    CompileStats SB = batchCompile(PM, MBatch.Functions[I]);
    CompileStats SP = PC.compile(MProb.Functions[I]);
    fixEntryExit(MBatch.Functions[I]);
    fixEntryExit(MProb.Functions[I]);
    SizeBatch += MBatch.Functions[I].instructionCount();
    SizeProb += MProb.Functions[I].instructionCount();
    std::printf("%-22s | %9llu %6llu | %9llu %6llu\n",
                MBatch.Functions[I].Name.c_str(),
                static_cast<unsigned long long>(SB.Attempted),
                static_cast<unsigned long long>(SB.Active),
                static_cast<unsigned long long>(SP.Attempted),
                static_cast<unsigned long long>(SP.Active));
  }

  Interpreter SimB(MBatch), SimP(MProb);
  RunResult RB = SimB.run("main", {});
  RunResult RP = SimP.run("main", {});
  if (!RB.Ok || !RP.Ok || !RB.sameBehavior(RP)) {
    std::fprintf(stderr, "behaviour mismatch!\n");
    return 1;
  }
  std::printf("\n%s compiled with interactions learned elsewhere:\n",
              HeldOut);
  std::printf("  code size        %llu vs %llu (prob/batch %.3f)\n",
              static_cast<unsigned long long>(SizeProb),
              static_cast<unsigned long long>(SizeBatch),
              static_cast<double>(SizeProb) /
                  static_cast<double>(SizeBatch));
  std::printf("  dynamic insts    %llu vs %llu (prob/batch %.3f)\n",
              static_cast<unsigned long long>(RP.DynamicInsts),
              static_cast<unsigned long long>(RB.DynamicInsts),
              static_cast<double>(RP.DynamicInsts) /
                  static_cast<double>(RB.DynamicInsts));
  std::printf("  identical output: yes\n");
  return 0;
}
