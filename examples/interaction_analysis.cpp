//===- interaction_analysis.cpp - Measuring how phases interact ----------------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Enumerate one workload's functions and print the measured enabling /
// disabling / independence probabilities (paper, Section 5). A smaller,
// program-specific version of bench_table4_6 that also demonstrates
// querying individual probabilities through the API.
//
//   $ ./examples/interaction_analysis [workload]    (default: stringsearch)
//
//===----------------------------------------------------------------------===//

#include "src/core/Interaction.h"
#include "src/frontend/Compile.h"
#include "src/opt/PhaseManager.h"
#include "src/workloads/Workloads.h"

#include <cstdio>

using namespace pose;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "stringsearch";
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name);
    return 1;
  }
  CompileResult CR = compileMC(W->Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s", CR.diagText().c_str());
    return 1;
  }

  PhaseManager PM;
  Enumerator E(PM, EnumeratorConfig{});
  InteractionAnalysis IA;
  for (Function &F : CR.M.Functions) {
    EnumerationResult R = E.enumerate(F);
    if (R.complete()) {
      IA.addFunction(R);
      std::printf("enumerated %-22s %6zu instances, %5zu leaves\n",
                  F.Name.c_str(), R.Nodes.size(), R.leafCount());
    } else {
      std::printf("skipped    %-22s (budget exceeded)\n", F.Name.c_str());
    }
  }

  std::printf("\nenabling probabilities (Table 4):\n%s\n",
              IA.renderTable(InteractionAnalysis::TableKind::Enabling)
                  .c_str());
  std::printf("disabling probabilities (Table 5):\n%s\n",
              IA.renderTable(InteractionAnalysis::TableKind::Disabling)
                  .c_str());
  std::printf("independence probabilities (Table 6):\n%s\n",
              IA.renderTable(InteractionAnalysis::TableKind::Independence)
                  .c_str());

  // Individual queries: the interactions the paper calls out in prose.
  std::printf("selected interactions:\n");
  std::printf("  P(s enabled by k)  = %.2f  (moves from allocation "
              "collapse)\n",
              IA.enabling(PhaseId::InstructionSelection,
                          PhaseId::RegisterAllocation));
  std::printf("  P(o disabled by c) = %.2f  (c forces register "
              "assignment)\n",
              IA.disabling(PhaseId::EvalOrder, PhaseId::Cse));
  std::printf("  P(o disabled by k) = %.2f\n",
              IA.disabling(PhaseId::EvalOrder,
                           PhaseId::RegisterAllocation));
  std::printf("  P(b enabled by k)  = %.2f  (allocation never touches "
              "control flow)\n",
              IA.enabling(PhaseId::BranchChaining,
                          PhaseId::RegisterAllocation));
  return 0;
}
