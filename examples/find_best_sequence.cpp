//===- find_best_sequence.cpp - Optimal phase orderings from the DAG -----------===//
//
// Part of POSE. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The payoff of exhaustive enumeration (paper, Conclusions): "It is now
// possible to find the optimal phase ordering for some characteristics.
// For instance, we are able to find the minimal code size for most of the
// functions in our benchmark suite."
//
// This example enumerates one workload function, finds the instance with
// minimal code size and the instance with minimal dynamic instruction
// count (simulating each distinct control flow), prints the phase
// sequences reaching them, and compares against the default batch order.
//
//   $ ./examples/find_best_sequence [function-name]   (default: bit_count)
//
//===----------------------------------------------------------------------===//

#include "src/core/CfInference.h"
#include "src/core/Compilers.h"
#include "src/core/DagPaths.h"
#include "src/core/Enumerator.h"
#include "src/frontend/Compile.h"
#include "src/ir/Printer.h"
#include "src/opt/PhaseManager.h"
#include "src/sim/Interpreter.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace pose;

int main(int Argc, char **Argv) {
  const char *Target = Argc > 1 ? Argv[1] : "bit_count";

  // Locate the function in the workload suite.
  for (const Workload &W : allWorkloads()) {
    CompileResult CR = compileMC(W.Source);
    if (!CR.ok())
      continue;
    Module &M = CR.M;
    int Id = M.findGlobal(Target);
    if (Id < 0 || !M.functionFor(Id))
      continue;
    Function Root = *M.functionFor(Id);

    PhaseManager PM;
    Enumerator E(PM, EnumeratorConfig{});
    EnumerationResult R = E.enumerate(Root);
    if (!R.complete()) {
      std::printf("space of %s is too big to enumerate exhaustively\n",
                  Target);
      return 1;
    }
    DagPaths Paths(R);

    // Minimal code size over all instances.
    uint32_t BestSize = 0;
    for (uint32_t N = 1; N != R.Nodes.size(); ++N)
      if (R.Nodes[N].CodeSize < R.Nodes[BestSize].CodeSize)
        BestSize = N;

    // Minimal dynamic count over ALL instances — cheap, because the
    // control-flow-class evaluator (paper Section 7) simulates only one
    // representative per distinct control flow.
    CfCountEvaluator Eval(M, "main", Target, Root, PM);
    uint64_t BestDyn = UINT64_MAX;
    uint32_t BestDynNode = 0;
    for (uint32_t N = 0; N != R.Nodes.size(); ++N) {
      CfCountEvaluator::Count C = Eval.evaluate(R, Paths, N);
      if (C.Valid && C.Dynamic < BestDyn) {
        BestDyn = C.Dynamic;
        BestDynNode = N;
      }
    }

    // The default batch compiler, for comparison.
    Interpreter Sim(M);
    Function Batch = Root;
    CompileStats BS = batchCompile(PM, Batch);
    Sim.overrideFunction(Target, &Batch);
    uint64_t BatchDyn = Sim.run("main", {}).DynamicInsts;
    Sim.overrideFunction(Target, nullptr);

    std::printf("%s(%s): %zu distinct instances, %zu leaves, "
                "%zu simulations for all dynamic counts\n\n",
                Target, W.Name, R.Nodes.size(), R.leafCount(),
                Eval.simulations());
    std::printf("unoptimized:        %4zu instructions\n",
                Root.instructionCount());
    std::printf("batch compiler:     %4zu instructions  (sequence %s)\n",
                Batch.instructionCount(), BS.ActiveSequence.c_str());
    std::printf("minimal code size:  %4u instructions  (sequence %s)\n",
                R.Nodes[BestSize].CodeSize,
                Paths.sequenceTo(BestSize).c_str());
    std::printf("\nwhole-program dynamic instructions (running main):\n");
    std::printf("batch-compiled %s:  %llu\n", Target,
                static_cast<unsigned long long>(BatchDyn));
    std::printf("best enumerated:    %llu  (sequence %s)\n",
                static_cast<unsigned long long>(BestDyn),
                Paths.sequenceTo(BestDynNode).c_str());

    Function BestInst = Paths.materialize(Root, PM, BestSize);
    std::printf("\nsmallest instance:\n%s", printFunction(BestInst).c_str());
    return 0;
  }
  std::fprintf(stderr, "no workload function named '%s'\n", Target);
  return 1;
}
